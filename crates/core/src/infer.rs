//! The type-inference system `⊢S ϕ : t` of Fig. 8.
//!
//! [`infer_triples`] computes `TS(ϕ) = {t | ⊢S ϕ : t}` — the set of all
//! graph schema triples compatible with `ϕ` — by structural induction,
//! delegating transitive closures to [`crate::plc`].
//!
//! The inference rules:
//!
//! ```text
//! TBASIC    (ln, le, l'n) ∈ Tb(S)            ⟹ ⊢ le : (ln, le, l'n)
//! TMINUS    ⊢ ϕ : (ln, ψ, l'n)               ⟹ ⊢ -ϕ : (l'n, -ψ, ln)
//! TCONCAT   ⊢ ϕ1:(ln,ψ1,l'n), ⊢ ϕ2:(l'n,ψ2,l''n)
//!                                            ⟹ ⊢ ϕ1/ϕ2 : (ln, ψ1/l'n ψ2, l''n)
//! TUNION    ⊢ ϕi : t                         ⟹ ⊢ ϕ1 ∪ ϕ2 : t
//! TCONJ     ⊢ ϕ1:(ln,ψ1,l'n), ⊢ ϕ2:(ln,ψ2,l'n)
//!                                            ⟹ ⊢ ϕ1 ∩ ϕ2 : (ln, ψ1∩ψ2, l'n)
//! TBRANCHR  ⊢ ϕ1:(ln,ψ1,l'n), ⊢ ϕ2:(l'n,ψ2,l''n)
//!                                            ⟹ ⊢ ϕ1[ϕ2] : (ln, ψ1[ψ2], l'n)
//! TBRANCHL  ⊢ ϕ1:(ln,ψ1,l'n), ⊢ ϕ2:(ln,ψ2,l''n)
//!                                            ⟹ ⊢ [ϕ1]ϕ2 : (ln, [ψ1]ψ2, l''n)
//! TPLUS     t ∈ PlC(ϕ, TS(ϕ))               ⟹ ⊢ ϕ+ : t
//! ```

use sgq_algebra::ast::PathExpr;
use sgq_common::{Result, SgqError};
use sgq_graph::GraphSchema;
use sgq_query::annotated::AnnotatedPath;

use crate::plc::{plc, PlcOptions};
use crate::triple::Triple;

/// Budgets and switches for the inference.
#[derive(Debug, Clone, Copy)]
pub struct InferOptions {
    /// Passed through to [`plc`].
    pub plc: PlcOptions,
    /// Maximum size of any intermediate `TS(ϕ)`; exceeding it aborts the
    /// rewrite (the pipeline then reverts to the baseline query).
    pub max_triples: usize,
}

impl Default for InferOptions {
    fn default() -> Self {
        InferOptions {
            plc: PlcOptions::default(),
            max_triples: 4096,
        }
    }
}

/// Computes `TS(ϕ)` under `schema`.
pub fn infer_triples(
    schema: &GraphSchema,
    expr: &PathExpr,
    opts: InferOptions,
) -> Result<Vec<Triple>> {
    let mut out = infer_rec(schema, expr, &opts)?;
    dedup(&mut out);
    Ok(out)
}

fn check_budget(set: &[Triple], opts: &InferOptions) -> Result<()> {
    if set.len() > opts.max_triples {
        return Err(SgqError::Execution(format!(
            "type inference exceeded the triple budget ({} > {})",
            set.len(),
            opts.max_triples
        )));
    }
    Ok(())
}

fn dedup(v: &mut Vec<Triple>) {
    v.sort_unstable_by(|a, b| {
        (a.src, &a.psi, a.tgt, &a.plus_paths).cmp(&(b.src, &b.psi, b.tgt, &b.plus_paths))
    });
    v.dedup();
}

fn infer_rec(schema: &GraphSchema, expr: &PathExpr, opts: &InferOptions) -> Result<Vec<Triple>> {
    let mut out = match expr {
        // TBASIC
        PathExpr::Label(le) => schema
            .triples_for_edge_label(*le)
            .iter()
            .map(|&(s, t)| Triple::new(s, AnnotatedPath::plain(PathExpr::Label(*le)), t))
            .collect(),
        // TMINUS (reverse flips endpoints)
        PathExpr::Reverse(le) => schema
            .triples_for_edge_label(*le)
            .iter()
            .map(|&(s, t)| Triple::new(t, AnnotatedPath::plain(PathExpr::Reverse(*le)), s))
            .collect(),
        // TCONCAT
        PathExpr::Concat(a, b) => {
            let ta = infer_rec(schema, a, opts)?;
            let tb = infer_rec(schema, b, opts)?;
            let mut out = Vec::new();
            for t1 in &ta {
                for t2 in &tb {
                    if t1.tgt == t2.src {
                        let mut paths = t1.plus_paths.clone();
                        paths.extend_from_slice(&t2.plus_paths);
                        out.push(Triple::with_paths(
                            t1.src,
                            AnnotatedPath::concat(
                                t1.psi.clone(),
                                Some(vec![t1.tgt]),
                                t2.psi.clone(),
                            ),
                            t2.tgt,
                            paths,
                        ));
                    }
                }
            }
            out
        }
        // TUNION (left and right)
        PathExpr::Union(a, b) => {
            let mut out = infer_rec(schema, a, opts)?;
            out.extend(infer_rec(schema, b, opts)?);
            out
        }
        // TCONJ: both endpoints must agree
        PathExpr::Conj(a, b) => {
            let ta = infer_rec(schema, a, opts)?;
            let tb = infer_rec(schema, b, opts)?;
            let mut out = Vec::new();
            for t1 in &ta {
                for t2 in &tb {
                    if t1.src == t2.src && t1.tgt == t2.tgt {
                        let mut paths = t1.plus_paths.clone();
                        paths.extend_from_slice(&t2.plus_paths);
                        out.push(Triple::with_paths(
                            t1.src,
                            AnnotatedPath::conj(t1.psi.clone(), t2.psi.clone()),
                            t1.tgt,
                            paths,
                        ));
                    }
                }
            }
            out
        }
        // TBRANCHR: result endpoints come from ϕ1
        PathExpr::BranchR(a, b) => {
            let ta = infer_rec(schema, a, opts)?;
            let tb = infer_rec(schema, b, opts)?;
            let mut out = Vec::new();
            for t1 in &ta {
                for t2 in &tb {
                    if t1.tgt == t2.src {
                        let mut paths = t1.plus_paths.clone();
                        paths.extend_from_slice(&t2.plus_paths);
                        out.push(Triple::with_paths(
                            t1.src,
                            AnnotatedPath::branch_r(t1.psi.clone(), t2.psi.clone()),
                            t1.tgt,
                            paths,
                        ));
                    }
                }
            }
            out
        }
        // TBRANCHL: result endpoints are (sc(ϕ2) = sc(ϕ1), tr(ϕ2))
        PathExpr::BranchL(a, b) => {
            let ta = infer_rec(schema, a, opts)?;
            let tb = infer_rec(schema, b, opts)?;
            let mut out = Vec::new();
            for t1 in &ta {
                for t2 in &tb {
                    if t1.src == t2.src {
                        let mut paths = t1.plus_paths.clone();
                        paths.extend_from_slice(&t2.plus_paths);
                        out.push(Triple::with_paths(
                            t2.src,
                            AnnotatedPath::branch_l(t1.psi.clone(), t2.psi.clone()),
                            t2.tgt,
                            paths,
                        ));
                    }
                }
            }
            out
        }
        // TPLUS
        PathExpr::Plus(a) => {
            let mut ta = infer_rec(schema, a, opts)?;
            dedup(&mut ta);
            plc(a, &ta, opts.plc)
        }
    };
    dedup(&mut out);
    check_budget(&out, opts)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::schema::fig1_yago_schema;
    use sgq_query::cqt::annotated_to_string;

    fn infer(s: &str) -> Vec<Triple> {
        let schema = fig1_yago_schema();
        let e = parse_path(s, &schema).unwrap();
        infer_triples(&schema, &e, InferOptions::default()).unwrap()
    }

    fn rendered(s: &str) -> Vec<String> {
        let schema = fig1_yago_schema();
        infer(s).iter().map(|t| t.display(&schema)).collect()
    }

    #[test]
    fn tbasic_single_label() {
        let r = rendered("owns");
        assert_eq!(r, vec!["(PERSON, owns, PROPERTY)"]);
    }

    #[test]
    fn tbasic_overloaded_label() {
        let r = rendered("isLocatedIn");
        assert_eq!(r.len(), 3);
        assert!(r.contains(&"(PROPERTY, isLocatedIn, CITY)".to_string()));
        assert!(r.contains(&"(CITY, isLocatedIn, REGION)".to_string()));
        assert!(r.contains(&"(REGION, isLocatedIn, COUNTRY)".to_string()));
    }

    #[test]
    fn tminus_flips() {
        let r = rendered("-owns");
        assert_eq!(r, vec!["(PROPERTY, -owns, PERSON)"]);
    }

    #[test]
    fn tconcat_joins_on_middle_label() {
        // owns/isLocatedIn: only PROPERTY matches the middle
        let r = rendered("owns/isLocatedIn");
        assert_eq!(r, vec!["(PERSON, owns/{PROPERTY}isLocatedIn, CITY)"]);
    }

    #[test]
    fn tconcat_empty_when_incompatible() {
        // livesIn ends at CITY; owns starts at PERSON — no chain
        assert!(infer("livesIn/owns").is_empty());
    }

    #[test]
    fn tunion_unions() {
        let r = infer("owns | livesIn");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn tconj_requires_both_endpoints() {
        let r = rendered("isMarriedTo & isMarriedTo");
        assert_eq!(r.len(), 1);
        assert!(r[0].contains("PERSON"));
        assert!(infer("owns & livesIn").is_empty());
    }

    #[test]
    fn tbranch_r_keeps_phi1_endpoints() {
        // livesIn[isLocatedIn]: CITY has an outgoing isLocatedIn
        let r = rendered("livesIn[isLocatedIn]");
        assert_eq!(r, vec!["(PERSON, livesIn[isLocatedIn], CITY)"]);
    }

    #[test]
    fn tbranch_l_takes_phi2_endpoints() {
        let r = rendered("[owns]livesIn");
        assert_eq!(r, vec!["(PERSON, [owns]livesIn, CITY)"]);
    }

    #[test]
    fn table1_isl_plus() {
        // Table 1 row 2: TS(isL+) has 6 triples
        let schema = fig1_yago_schema();
        let r = infer("isLocatedIn+");
        assert_eq!(r.len(), 6);
        let rendered: Vec<String> = r.iter().map(|t| t.display(&schema)).collect();
        for expected in [
            "(PROPERTY, isLocatedIn, CITY)",
            "(CITY, isLocatedIn, REGION)",
            "(REGION, isLocatedIn, COUNTRY)",
            "(PROPERTY, isLocatedIn/{CITY}isLocatedIn, REGION)",
            "(CITY, isLocatedIn/{REGION}isLocatedIn, COUNTRY)",
            "(PROPERTY, isLocatedIn/{CITY}isLocatedIn/{REGION}isLocatedIn, COUNTRY)",
        ] {
            assert!(
                rendered.contains(&expected.to_string()),
                "missing {expected} in {rendered:?}"
            );
        }
    }

    #[test]
    fn table1_dw_plus() {
        let r = rendered("dealsWith+");
        assert_eq!(r, vec!["(COUNTRY, dealsWith+, COUNTRY)"]);
    }

    #[test]
    fn table1_lvin_isl_plus() {
        // Table 1 row 4: two triples
        let r = rendered("livesIn/isLocatedIn+");
        assert_eq!(r.len(), 2);
        assert!(r.contains(&"(PERSON, livesIn/{CITY}isLocatedIn, REGION)".to_string()));
        assert!(r.contains(
            &"(PERSON, livesIn/{CITY}isLocatedIn/{REGION}isLocatedIn, COUNTRY)".to_string()
        ));
    }

    #[test]
    fn table1_full_phi4() {
        // Table 1 row 5: exactly one triple
        let schema = fig1_yago_schema();
        let r = infer("livesIn/isLocatedIn+/dealsWith+");
        assert_eq!(r.len(), 1);
        let s = r[0].display(&schema);
        assert_eq!(
            s,
            "(PERSON, livesIn/{CITY}isLocatedIn/{REGION}isLocatedIn/{COUNTRY}dealsWith+, COUNTRY)"
        );
        // The closure of isLocatedIn was replaced by one fixed path of length 2.
        assert_eq!(r[0].plus_paths, vec![2]);
    }

    #[test]
    fn unknown_label_gives_empty() {
        // a label with no schema edge yields the empty triple set
        let mut b = sgq_graph::GraphSchema::builder();
        b.node("X", &[]);
        b.edge("X", "r", "X");
        let schema = b.build().unwrap();
        let mut interner = sgq_common::Interner::new();
        interner.intern("r");
        interner.intern("ghost");
        let e = parse_path("ghost", &interner).unwrap();
        let r = infer_triples(&schema, &e, InferOptions::default()).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn budget_is_enforced() {
        let schema = fig1_yago_schema();
        let e = parse_path("isLocatedIn+", &schema).unwrap();
        let opts = InferOptions {
            max_triples: 2,
            ..Default::default()
        };
        assert!(infer_triples(&schema, &e, opts).is_err());
    }

    #[test]
    fn annotated_display_sanity() {
        let schema = fig1_yago_schema();
        let r = infer("owns/isLocatedIn");
        assert_eq!(
            annotated_to_string(&r[0].psi, &schema),
            "owns/{PROPERTY}isLocatedIn"
        );
    }
}
