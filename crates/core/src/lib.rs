//! The paper's primary contribution: **schema-based query rewriting**.
//!
//! Pipeline (§3, Fig. 10's Rewriter module):
//!
//! 1. [`mod@simplify`] — preliminary path simplification, rules R1–R5 (Fig. 6),
//! 2. [`infer`] — the type-inference system `⊢S ϕ : t` (Fig. 8) computing
//!    the compatible-triple set `TS(ϕ)`,
//! 3. [`plc`] — the `PlC` algorithm for transitive closure (Def. 8),
//! 4. [`merge`] — triple merging `MS(ϕ)` (Def. 9),
//! 5. [`redundant`] — redundant-annotation removal (§3.2.2),
//! 6. [`translate`] — annotated expressions back to CQTs (`Q`, Fig. 9) and
//!    the schema-enriched query `RS(ϕ)` (Def. 11),
//! 7. [`pipeline`] — the end-to-end rewriter with revert detection (§5.2)
//!    and ablation switches.

#![warn(missing_docs)]

pub mod infer;
pub mod merge;
pub mod pipeline;
pub mod plc;
pub mod redundant;
pub mod simplify;
pub mod translate;
pub mod triple;

pub use infer::infer_triples;
pub use merge::{merge_triples, MergedTriple};
pub use pipeline::{rewrite_path, rewrite_ucqt, RewriteOptions, RewriteOutcome, RewriteReport};
pub use plc::PlusStats;
pub use redundant::RedundancyRule;
pub use simplify::simplify;
pub use translate::{schema_enriched_query, schema_enriched_query_with};
pub use triple::Triple;
