//! The `PlC` (plus-compatibility) algorithm: Definition 8.
//!
//! Given the compatible-triple set `T = TS(ϕ)`, `PlC(ϕ, T)` decides, per
//! endpoint pair, whether the transitive closure `ϕ+` can be replaced by a
//! finite set of fixed-length annotated concatenations:
//!
//! 1. build the directed multigraph `G` whose vertices are node labels and
//!    whose edges are the triples of `T`;
//! 2. compute `K`, the vertices lying on a cycle;
//! 3. for every simple path `p` from `A` to `B` in `G` (plus the trivial
//!    path at every `A ∈ K`): if `p` touches `K`, emit `(A, ϕ+, B)`;
//!    otherwise emit the concatenation of `p`'s triples, annotated with the
//!    intermediate labels.
//!
//! When the label graph is acyclic this *eliminates the transitive closure
//! entirely* — the paper's headline optimisation (16 of 18 YAGO queries,
//! Tab. 6).

use sgq_algebra::ast::PathExpr;
use sgq_common::{FxHashMap, FxHashSet, NodeLabelId};
use sgq_query::annotated::AnnotatedPath;

use crate::triple::Triple;

/// Statistics about the fixed-length paths generated while eliminating a
/// transitive closure (feeds the paper's Table 6).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlusStats {
    /// Lengths (in schema-triple steps) of each generated fixed-length path.
    pub path_lengths: Vec<u16>,
    /// Whether some `(A, ϕ+, B)` triple had to be kept (closure survives).
    pub closure_kept: bool,
}

impl PlusStats {
    /// Number of generated fixed-length paths (`#Paths` in Tab. 6).
    pub fn count(&self) -> usize {
        self.path_lengths.len()
    }

    /// Minimum path length.
    pub fn min(&self) -> Option<u16> {
        self.path_lengths.iter().copied().min()
    }

    /// Maximum path length.
    pub fn max(&self) -> Option<u16> {
        self.path_lengths.iter().copied().max()
    }

    /// Average path length.
    pub fn avg(&self) -> Option<f64> {
        if self.path_lengths.is_empty() {
            None
        } else {
            Some(self.path_lengths.iter().map(|&l| l as f64).sum::<f64>() / self.count() as f64)
        }
    }
}

/// Tuning knobs for `PlC`.
#[derive(Debug, Clone, Copy)]
pub struct PlcOptions {
    /// When `false`, skip path enumeration entirely and keep `ϕ+` for every
    /// reachable endpoint pair (the "no TC elimination" ablation).
    pub tc_elimination: bool,
    /// Upper bound on enumerated simple paths before falling back to the
    /// reachability-only result (guards against dense label graphs).
    pub max_paths: usize,
}

impl Default for PlcOptions {
    fn default() -> Self {
        PlcOptions {
            tc_elimination: true,
            max_paths: 4096,
        }
    }
}

/// Computes `PlC(ϕ, T)` (Definition 8).
pub fn plc(phi: &PathExpr, triples: &[Triple], opts: PlcOptions) -> Vec<Triple> {
    let graph = LabelGraph::new(triples);
    if !opts.tc_elimination {
        return reachability_closure(phi, &graph);
    }
    let k = graph.cyclic_vertices();

    let mut result: FxHashSet<Triple> = FxHashSet::default();
    // Trivial paths: every vertex on a cycle yields (A, ϕ+, A).
    for &a in &k {
        result.insert(Triple::new(
            a,
            AnnotatedPath::plain(PathExpr::plus(phi.clone())),
            a,
        ));
    }

    // Enumerate simple paths (no repeated vertices) from every vertex.
    let mut budget = opts.max_paths;
    for &start in graph.vertices() {
        let mut visited: FxHashSet<NodeLabelId> = FxHashSet::default();
        visited.insert(start);
        let mut stack: Vec<usize> = Vec::new();
        if !dfs(
            &graph,
            &k,
            phi,
            start,
            &mut visited,
            &mut stack,
            &mut result,
            &mut budget,
        ) {
            // Budget exhausted: fall back to the sound, complete,
            // non-eliminating result.
            return reachability_closure(phi, &graph);
        }
    }
    let mut v: Vec<Triple> = result.into_iter().collect();
    v.sort_unstable_by(|a, b| (a.src, &a.psi, a.tgt).cmp(&(b.src, &b.psi, b.tgt)));
    v
}

/// Extracts the Table 6 statistics from a `PlC` result.
pub fn plus_stats(result: &[Triple], phi: &PathExpr) -> PlusStats {
    let plus_form = AnnotatedPath::plain(PathExpr::plus(phi.clone()));
    let mut stats = PlusStats::default();
    for t in result {
        if t.psi == plus_form {
            stats.closure_kept = true;
        } else {
            // The outermost expansion is recorded as the *last* entry the
            // construction pushed; every entry is still a generated path.
            stats.path_lengths.push(*t.plus_paths.last().unwrap_or(&1));
        }
    }
    stats.path_lengths.sort_unstable();
    stats
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    graph: &LabelGraph<'_>,
    k: &FxHashSet<NodeLabelId>,
    phi: &PathExpr,
    current: NodeLabelId,
    visited: &mut FxHashSet<NodeLabelId>,
    stack: &mut Vec<usize>,
    result: &mut FxHashSet<Triple>,
    budget: &mut usize,
) -> bool {
    for &edge_idx in graph.out_edges(current) {
        let triple = &graph.triples[edge_idx];
        let next = triple.tgt;
        if visited.contains(&next) {
            continue;
        }
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        stack.push(edge_idx);
        emit_path(graph, k, phi, stack, result);
        visited.insert(next);
        if !dfs(graph, k, phi, next, visited, stack, result, budget) {
            return false;
        }
        visited.remove(&next);
        stack.pop();
    }
    true
}

/// Emits the triple for the current path `stack` (a sequence of edges).
fn emit_path(
    graph: &LabelGraph<'_>,
    k: &FxHashSet<NodeLabelId>,
    phi: &PathExpr,
    stack: &[usize],
    result: &mut FxHashSet<Triple>,
) {
    let first = &graph.triples[stack[0]];
    let last = &graph.triples[*stack.last().unwrap()];
    let (a, b) = (first.src, last.tgt);
    let touches_k = k.contains(&a) || stack.iter().any(|&i| k.contains(&graph.triples[i].tgt));
    if touches_k {
        result.insert(Triple::new(
            a,
            AnnotatedPath::plain(PathExpr::plus(phi.clone())),
            b,
        ));
        return;
    }
    // Concatenate the path's expressions, annotating each junction with the
    // intermediate node label (left-associated).
    let mut psi = first.psi.clone();
    let mut plus_paths: Vec<u16> = first.plus_paths.clone();
    for window in stack.windows(2) {
        let junction = graph.triples[window[0]].tgt;
        let next = &graph.triples[window[1]];
        psi = AnnotatedPath::concat(psi, Some(vec![junction]), next.psi.clone());
        plus_paths.extend_from_slice(&next.plus_paths);
    }
    plus_paths.push(stack.len() as u16);
    result.insert(Triple::with_paths(a, psi, b, plus_paths));
}

/// Fallback / ablation result: `(A, ϕ+, B)` for every pair connected by a
/// non-empty path in `G` — sound and complete but with no elimination.
fn reachability_closure(phi: &PathExpr, graph: &LabelGraph<'_>) -> Vec<Triple> {
    let plus = PathExpr::plus(phi.clone());
    let mut pairs: Vec<(NodeLabelId, NodeLabelId)> =
        graph.triples.iter().map(|t| (t.src, t.tgt)).collect();
    sgq_common::sorted::normalize(&mut pairs);
    let closed = sgq_algebra::eval::transitive_closure(
        &pairs
            .iter()
            .map(|&(a, b)| {
                (
                    sgq_common::NodeId::new(a.raw()),
                    sgq_common::NodeId::new(b.raw()),
                )
            })
            .collect::<Vec<_>>(),
    );
    closed
        .into_iter()
        .map(|(a, b)| {
            Triple::new(
                NodeLabelId::new(a.raw()),
                AnnotatedPath::plain(plus.clone()),
                NodeLabelId::new(b.raw()),
            )
        })
        .collect()
}

/// The multigraph `G` of Definition 8.
struct LabelGraph<'a> {
    triples: &'a [Triple],
    vertices: Vec<NodeLabelId>,
    out: FxHashMap<NodeLabelId, Vec<usize>>,
}

impl<'a> LabelGraph<'a> {
    fn new(triples: &'a [Triple]) -> Self {
        let mut vertices: Vec<NodeLabelId> = triples.iter().flat_map(|t| [t.src, t.tgt]).collect();
        sgq_common::sorted::normalize(&mut vertices);
        let mut out: FxHashMap<NodeLabelId, Vec<usize>> = FxHashMap::default();
        for (i, t) in triples.iter().enumerate() {
            out.entry(t.src).or_default().push(i);
        }
        LabelGraph {
            triples,
            vertices,
            out,
        }
    }

    fn vertices(&self) -> &[NodeLabelId] {
        &self.vertices
    }

    fn out_edges(&self, v: NodeLabelId) -> &[usize] {
        self.out.get(&v).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// `K`: vertices that lie on a cycle (reach themselves via a non-empty
    /// path).
    fn cyclic_vertices(&self) -> FxHashSet<NodeLabelId> {
        // Floyd–Warshall-style reachability on the (small) label graph.
        let n = self.vertices.len();
        let index: FxHashMap<NodeLabelId, usize> = self
            .vertices
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let mut reach = vec![false; n * n];
        for t in self.triples {
            reach[index[&t.src] * n + index[&t.tgt]] = true;
        }
        for k in 0..n {
            for i in 0..n {
                if reach[i * n + k] {
                    for j in 0..n {
                        if reach[k * n + j] {
                            reach[i * n + j] = true;
                        }
                    }
                }
            }
        }
        self.vertices
            .iter()
            .enumerate()
            .filter(|&(i, _)| reach[i * n + i])
            .map(|(_, &v)| v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::schema::fig1_yago_schema;
    use sgq_graph::GraphSchema;

    fn basic_triples(schema: &GraphSchema, label: &str) -> Vec<Triple> {
        let le = schema.edge_label(label).unwrap();
        schema
            .triples_for_edge_label(le)
            .iter()
            .map(|&(s, t)| Triple::new(s, AnnotatedPath::plain(PathExpr::Label(le)), t))
            .collect()
    }

    #[test]
    fn dealswith_keeps_closure() {
        // Example 10: TS(dealsWith+) = {(COUNTRY, dealsWith+, COUNTRY)}
        let schema = fig1_yago_schema();
        let phi = parse_path("dealsWith", &schema).unwrap();
        let t = basic_triples(&schema, "dealsWith");
        let r = plc(&phi, &t, PlcOptions::default());
        assert_eq!(r.len(), 1);
        let country = schema.node_label("COUNTRY").unwrap();
        assert_eq!(r[0].src, country);
        assert_eq!(r[0].tgt, country);
        assert_eq!(r[0].psi, AnnotatedPath::plain(PathExpr::plus(phi.clone())));
        let stats = plus_stats(&r, &phi);
        assert!(stats.closure_kept);
        assert_eq!(stats.count(), 0);
    }

    #[test]
    fn islocatedin_eliminates_closure_with_six_paths() {
        // Example 10: TS(isLocatedIn+) contains 6 triples (6 non-empty
        // paths of the acyclic 4-vertex chain).
        let schema = fig1_yago_schema();
        let phi = parse_path("isLocatedIn", &schema).unwrap();
        let t = basic_triples(&schema, "isLocatedIn");
        let r = plc(&phi, &t, PlcOptions::default());
        assert_eq!(r.len(), 6);
        let stats = plus_stats(&r, &phi);
        assert!(!stats.closure_kept);
        assert_eq!(stats.count(), 6);
        assert_eq!(stats.min(), Some(1));
        assert_eq!(stats.max(), Some(3));
        // lengths: 1,1,1,2,2,3
        assert_eq!(stats.path_lengths, vec![1, 1, 1, 2, 2, 3]);
    }

    #[test]
    fn ablation_reachability_only() {
        let schema = fig1_yago_schema();
        let phi = parse_path("isLocatedIn", &schema).unwrap();
        let t = basic_triples(&schema, "isLocatedIn");
        let r = plc(
            &phi,
            &t,
            PlcOptions {
                tc_elimination: false,
                max_paths: 4096,
            },
        );
        // 6 reachable pairs, all keeping ϕ+
        assert_eq!(r.len(), 6);
        let plus_form = AnnotatedPath::plain(PathExpr::plus(phi.clone()));
        assert!(r.iter().all(|t| t.psi == plus_form));
    }

    #[test]
    fn budget_falls_back_to_reachability() {
        let schema = fig1_yago_schema();
        let phi = parse_path("isLocatedIn", &schema).unwrap();
        let t = basic_triples(&schema, "isLocatedIn");
        let r = plc(
            &phi,
            &t,
            PlcOptions {
                tc_elimination: true,
                max_paths: 2,
            },
        );
        let plus_form = AnnotatedPath::plain(PathExpr::plus(phi.clone()));
        assert!(r.iter().all(|t| t.psi == plus_form));
    }

    #[test]
    fn mixed_cycle_and_chain() {
        // Graph: A -> B -> C and B -> B (self-loop). Paths through B keep
        // the closure; nothing avoids B here except... nothing: every edge
        // touches B. All results keep ϕ+.
        let mut b = GraphSchema::builder();
        b.edge("A", "r", "B");
        b.edge("B", "r", "B");
        b.edge("B", "r", "C");
        let schema = b.build().unwrap();
        let phi = parse_path("r", &schema).unwrap();
        let t = basic_triples(&schema, "r");
        let r = plc(&phi, &t, PlcOptions::default());
        let plus_form = AnnotatedPath::plain(PathExpr::plus(phi.clone()));
        assert!(r.iter().all(|t| t.psi == plus_form), "{r:?}");
        // pairs: (A,B),(A,C),(B,B),(B,C) — and A->B->B->C etc. collapse
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn parallel_edges_give_distinct_paths() {
        // Two distinct schema edges A -r-> B and A -s-> B; PlC over the
        // union's triples yields two length-1 paths.
        let mut b = GraphSchema::builder();
        b.edge("A", "r", "B");
        b.edge("A", "s", "B");
        let schema = b.build().unwrap();
        let r_le = schema.edge_label("r").unwrap();
        let s_le = schema.edge_label("s").unwrap();
        let a = schema.node_label("A").unwrap();
        let bb = schema.node_label("B").unwrap();
        let phi = PathExpr::union(PathExpr::Label(r_le), PathExpr::Label(s_le));
        let triples = vec![
            Triple::new(a, AnnotatedPath::plain(PathExpr::Label(r_le)), bb),
            Triple::new(a, AnnotatedPath::plain(PathExpr::Label(s_le)), bb),
        ];
        let r = plc(&phi, &triples, PlcOptions::default());
        assert_eq!(r.len(), 2);
        let stats = plus_stats(&r, &phi);
        assert_eq!(stats.path_lengths, vec![1, 1]);
    }
}
