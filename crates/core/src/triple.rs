//! Graph schema triples (Definitions 5 and 6).
//!
//! A [`Triple`] `(ln, ψ, l'n)` pairs an annotated path expression with the
//! node labels of its endpoints. [`Triple::plus_paths`] records, for the
//! Table 6 statistics, the lengths of the fixed-length expansions that
//! replaced transitive closures inside `ψ`.

use sgq_common::NodeLabelId;
use sgq_graph::GraphSchema;
use sgq_query::annotated::AnnotatedPath;
use sgq_query::cqt::annotated_to_string;

/// A graph schema triple `(sc(t), eT(t), tr(t))` (Definition 6).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Source node label `sc(t)`.
    pub src: NodeLabelId,
    /// Annotated path expression `eT(t)`.
    pub psi: AnnotatedPath,
    /// Target node label `tr(t)`.
    pub tgt: NodeLabelId,
    /// Lengths (in schema-triple steps) of the fixed-length paths that
    /// replaced `ϕ+` sub-terms inside `psi`, sorted. Empty when no closure
    /// was eliminated.
    pub plus_paths: Vec<u16>,
}

impl Triple {
    /// A triple with no eliminated closures.
    pub fn new(src: NodeLabelId, psi: AnnotatedPath, tgt: NodeLabelId) -> Self {
        Triple {
            src,
            psi,
            tgt,
            plus_paths: Vec::new(),
        }
    }

    /// A triple carrying plus-elimination statistics.
    pub fn with_paths(
        src: NodeLabelId,
        psi: AnnotatedPath,
        tgt: NodeLabelId,
        mut plus_paths: Vec<u16>,
    ) -> Self {
        plus_paths.sort_unstable();
        Triple {
            src,
            psi,
            tgt,
            plus_paths,
        }
    }

    /// Renders the triple in the paper's `(ln, ψ, l'n)` notation.
    pub fn display(&self, schema: &GraphSchema) -> String {
        format!(
            "({}, {}, {})",
            schema.node_label_name(self.src),
            annotated_to_string(&self.psi, schema),
            schema.node_label_name(self.tgt)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::schema::fig1_yago_schema;

    #[test]
    fn display_matches_paper_notation() {
        let schema = fig1_yago_schema();
        let person = schema.node_label("PERSON").unwrap();
        let property = schema.node_label("PROPERTY").unwrap();
        let t = Triple::new(
            person,
            AnnotatedPath::plain(parse_path("owns", &schema).unwrap()),
            property,
        );
        assert_eq!(t.display(&schema), "(PERSON, owns, PROPERTY)");
    }

    #[test]
    fn with_paths_sorts() {
        let schema = fig1_yago_schema();
        let person = schema.node_label("PERSON").unwrap();
        let t = Triple::with_paths(
            person,
            AnnotatedPath::plain(parse_path("owns", &schema).unwrap()),
            person,
            vec![3, 1, 2],
        );
        assert_eq!(t.plus_paths, vec![1, 2, 3]);
    }
}
