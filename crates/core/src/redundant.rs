//! Redundant-annotation removal (§3.2.2) and canonicalisation.
//!
//! An annotation is *redundant* when the schema already guarantees it: if
//! every label that can occur at an annotated position (in any database
//! conforming to the schema) is contained in the annotation's label set,
//! the filter can never remove anything and would only cost an extra
//! semi-join. We remove such annotations, then *canonicalise* the
//! expression: annotation-free regions collapse back into plain path
//! expressions and concatenation spines are re-segmented at the surviving
//! annotations — which is how Example 13's
//! `(∅, lvIn/isL/{REG}isL/dw+, ∅)` turns into the two-relation CQT
//! `(α, lvIn/isL, γ) ∧ (γ, isL/dw+, β) ∧ η(γ) ∈ {REG}`.
//!
//! Label-set computations here are *over-approximations* of the labels
//! that can occur, which makes removal sound: we only drop a filter when
//! even the over-approximation is covered.

use sgq_algebra::ast::PathExpr;
use sgq_common::sorted;
use sgq_graph::GraphSchema;
use sgq_query::annotated::{AnnotatedPath, LabelSet};

use crate::merge::MergedTriple;

/// When is an annotation *redundant* (§3.2.2)?
///
/// The paper is ambiguous: Example 13 removes an annotation as soon as one
/// adjacent side implies it (`EitherSide`), while the plans of Fig. 15–17
/// and the §5.2 revert counts only make sense if annotations survive as
/// long as they can pre-filter *some* join side (`BothSides`). We default
/// to `BothSides` — it reproduces the paper's measured system behaviour —
/// and keep `EitherSide` for Example 13 fidelity (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RedundancyRule {
    /// Remove when *both* adjacent sides already imply the label set: the
    /// filter can prune neither join side, so it is pure overhead.
    #[default]
    BothSides,
    /// Remove when either adjacent side implies the label set
    /// (Example 13's behaviour).
    EitherSide,
    /// Never remove (the `redundant_removal: false` ablation).
    Never,
}

/// Over-approximated `(source labels, target labels)` of a plain path
/// expression under `schema`.
pub fn plain_endpoints(schema: &GraphSchema, e: &PathExpr) -> (LabelSet, LabelSet) {
    match e {
        PathExpr::Label(le) => (schema.source_labels(*le), schema.target_labels(*le)),
        PathExpr::Reverse(le) => (schema.target_labels(*le), schema.source_labels(*le)),
        PathExpr::Concat(a, b) => {
            let (src, _) = plain_endpoints(schema, a);
            let (_, tgt) = plain_endpoints(schema, b);
            (src, tgt)
        }
        PathExpr::Union(a, b) => {
            let (sa, ta) = plain_endpoints(schema, a);
            let (sb, tb) = plain_endpoints(schema, b);
            (sorted::union(&sa, &sb), sorted::union(&ta, &tb))
        }
        PathExpr::Conj(a, b) => {
            let (sa, ta) = plain_endpoints(schema, a);
            let (sb, tb) = plain_endpoints(schema, b);
            (sorted::intersect(&sa, &sb), sorted::intersect(&ta, &tb))
        }
        PathExpr::BranchR(a, b) => {
            let (sa, ta) = plain_endpoints(schema, a);
            let (sb, _) = plain_endpoints(schema, b);
            (sa, sorted::intersect(&ta, &sb))
        }
        PathExpr::BranchL(a, b) => {
            let (sa, _) = plain_endpoints(schema, a);
            let (sb, tb) = plain_endpoints(schema, b);
            (sorted::intersect(&sa, &sb), tb)
        }
        PathExpr::Plus(a) => plain_endpoints(schema, a),
    }
}

/// Over-approximated endpoints of an annotated path expression.
pub fn annotated_endpoints(schema: &GraphSchema, psi: &AnnotatedPath) -> (LabelSet, LabelSet) {
    match psi {
        AnnotatedPath::Plain(e) => plain_endpoints(schema, e),
        AnnotatedPath::Concat(a, _, b) => {
            let (src, _) = annotated_endpoints(schema, a);
            let (_, tgt) = annotated_endpoints(schema, b);
            (src, tgt)
        }
        AnnotatedPath::BranchR(a, b) => {
            let (sa, ta) = annotated_endpoints(schema, a);
            let (sb, _) = annotated_endpoints(schema, b);
            (sa, sorted::intersect(&ta, &sb))
        }
        AnnotatedPath::BranchL(a, b) => {
            let (sa, _) = annotated_endpoints(schema, a);
            let (sb, tb) = annotated_endpoints(schema, b);
            (sorted::intersect(&sa, &sb), tb)
        }
        AnnotatedPath::Conj(a, b) => {
            let (sa, ta) = annotated_endpoints(schema, a);
            let (sb, tb) = annotated_endpoints(schema, b);
            (sorted::intersect(&sa, &sb), sorted::intersect(&ta, &tb))
        }
    }
}

/// Removes redundant annotations from `psi` (§3.2.2) under `rule`.
fn remove_in_expr(
    schema: &GraphSchema,
    psi: &AnnotatedPath,
    rule: RedundancyRule,
) -> AnnotatedPath {
    match psi {
        AnnotatedPath::Plain(e) => AnnotatedPath::Plain(e.clone()),
        AnnotatedPath::Concat(a, ann, b) => {
            let a2 = remove_in_expr(schema, a, rule);
            let b2 = remove_in_expr(schema, b, rule);
            let ann2 = match ann {
                None => None,
                Some(labels) => {
                    let (_, a_tgts) = annotated_endpoints(schema, &a2);
                    let (b_srcs, _) = annotated_endpoints(schema, &b2);
                    let implied_left = sorted::difference(&a_tgts, labels).is_empty();
                    let implied_right = sorted::difference(&b_srcs, labels).is_empty();
                    let redundant = match rule {
                        RedundancyRule::EitherSide => implied_left || implied_right,
                        RedundancyRule::BothSides => implied_left && implied_right,
                        RedundancyRule::Never => false,
                    };
                    if redundant {
                        None
                    } else {
                        Some(labels.clone())
                    }
                }
            };
            AnnotatedPath::concat(a2, ann2, b2)
        }
        AnnotatedPath::BranchR(a, b) => AnnotatedPath::branch_r(
            remove_in_expr(schema, a, rule),
            remove_in_expr(schema, b, rule),
        ),
        AnnotatedPath::BranchL(a, b) => AnnotatedPath::branch_l(
            remove_in_expr(schema, a, rule),
            remove_in_expr(schema, b, rule),
        ),
        AnnotatedPath::Conj(a, b) => AnnotatedPath::conj(
            remove_in_expr(schema, a, rule),
            remove_in_expr(schema, b, rule),
        ),
    }
}

/// Removes redundant annotations (internal positions and endpoints) and
/// canonicalises the expression, using the default [`RedundancyRule`].
pub fn remove_redundant(schema: &GraphSchema, triple: &MergedTriple) -> MergedTriple {
    remove_redundant_with(schema, triple, RedundancyRule::default())
}

/// [`remove_redundant`] with an explicit rule.
pub fn remove_redundant_with(
    schema: &GraphSchema,
    triple: &MergedTriple,
    rule: RedundancyRule,
) -> MergedTriple {
    let psi = remove_in_expr(schema, &triple.psi, rule);
    // Endpoint constraints never pre-filter another join side within the
    // triple itself, so the schema-implied check applies under every rule
    // except `Never`.
    let (src_possible, tgt_possible) = annotated_endpoints(schema, &psi);
    let keep_all = rule == RedundancyRule::Never;
    let src_labels = triple
        .src_labels
        .clone()
        .filter(|labels| keep_all || !sorted::difference(&src_possible, labels).is_empty());
    let tgt_labels = triple
        .tgt_labels
        .clone()
        .filter(|labels| keep_all || !sorted::difference(&tgt_possible, labels).is_empty());
    MergedTriple {
        src_labels,
        psi: canonicalize(&psi),
        tgt_labels,
        plus_paths: triple.plus_paths.clone(),
    }
}

/// Canonicalises an annotated expression:
///
/// * subtrees with no annotations collapse into [`AnnotatedPath::Plain`],
/// * concatenation spines are flattened and re-segmented so that maximal
///   annotation-free runs become single plain expressions.
pub fn canonicalize(psi: &AnnotatedPath) -> AnnotatedPath {
    if !psi.has_annotations() {
        return AnnotatedPath::Plain(psi.strip());
    }
    match psi {
        AnnotatedPath::Plain(e) => AnnotatedPath::Plain(e.clone()),
        AnnotatedPath::Concat(..) => {
            // Flatten the spine: parts p0 .. pn with annotations a0 .. a(n-1).
            let mut parts: Vec<AnnotatedPath> = Vec::new();
            let mut anns: Vec<Option<LabelSet>> = Vec::new();
            flatten(psi, &mut parts, &mut anns);
            let parts: Vec<AnnotatedPath> = parts.iter().map(canonicalize).collect();
            // Coalesce: merge adjacent plain parts joined by `None`.
            let mut out_parts: Vec<AnnotatedPath> = vec![parts[0].clone()];
            let mut out_anns: Vec<Option<LabelSet>> = Vec::new();
            for (i, part) in parts.iter().enumerate().skip(1) {
                let ann = anns[i - 1].clone();
                let last = out_parts.last_mut().expect("non-empty");
                match (&ann, &last, part) {
                    (None, AnnotatedPath::Plain(l), AnnotatedPath::Plain(r)) => {
                        *last = AnnotatedPath::Plain(PathExpr::concat(l.clone(), r.clone()));
                    }
                    _ => {
                        out_anns.push(ann);
                        out_parts.push(part.clone());
                    }
                }
            }
            // Rebuild left-associated.
            let mut iter = out_parts.into_iter();
            let mut acc = iter.next().expect("non-empty");
            for (part, ann) in iter.zip(out_anns) {
                acc = AnnotatedPath::concat(acc, ann, part);
            }
            acc
        }
        AnnotatedPath::BranchR(a, b) => AnnotatedPath::branch_r(canonicalize(a), canonicalize(b)),
        AnnotatedPath::BranchL(a, b) => AnnotatedPath::branch_l(canonicalize(a), canonicalize(b)),
        AnnotatedPath::Conj(a, b) => AnnotatedPath::conj(canonicalize(a), canonicalize(b)),
    }
}

/// Flattens a concatenation spine into parts and the annotations between
/// them.
fn flatten(psi: &AnnotatedPath, parts: &mut Vec<AnnotatedPath>, anns: &mut Vec<Option<LabelSet>>) {
    match psi {
        AnnotatedPath::Concat(a, ann, b) => {
            flatten(a, parts, anns);
            anns.push(ann.clone());
            flatten(b, parts, anns);
        }
        other => parts.push(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::{infer_triples, InferOptions};
    use crate::merge::merge_triples;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::schema::fig1_yago_schema;

    fn pipeline(s: &str, rule: RedundancyRule) -> Vec<MergedTriple> {
        let schema = fig1_yago_schema();
        let e = parse_path(s, &schema).unwrap();
        let t = infer_triples(&schema, &e, InferOptions::default()).unwrap();
        merge_triples(&t)
            .iter()
            .map(|m| remove_redundant_with(&schema, m, rule))
            .collect()
    }

    #[test]
    fn endpoints_of_plain_exprs() {
        let schema = fig1_yago_schema();
        let e = parse_path("livesIn", &schema).unwrap();
        let (src, tgt) = plain_endpoints(&schema, &e);
        assert_eq!(src, vec![schema.node_label("PERSON").unwrap()]);
        assert_eq!(tgt, vec![schema.node_label("CITY").unwrap()]);
        let e = parse_path("isLocatedIn+", &schema).unwrap();
        let (src, tgt) = plain_endpoints(&schema, &e);
        assert_eq!(src.len(), 3);
        assert_eq!(tgt.len(), 3);
    }

    #[test]
    fn example13_final_triple() {
        // ϕ4 = livesIn/isLocatedIn+/dealsWith+ reduces to
        // (∅, lvIn/isL/{REG}isL/dw+, ∅)
        let schema = fig1_yago_schema();
        let m = pipeline(
            "livesIn/isLocatedIn+/dealsWith+",
            RedundancyRule::EitherSide,
        );
        assert_eq!(m.len(), 1);
        let t = &m[0];
        assert_eq!(t.src_labels, None, "PERSON endpoint is schema-implied");
        assert_eq!(t.tgt_labels, None, "COUNTRY endpoint is schema-implied");
        assert_eq!(
            t.display(&schema),
            "(∅, livesIn/isLocatedIn/{REGION}isLocatedIn/dealsWith+, ∅)"
        );
    }

    #[test]
    fn fully_redundant_reverts_to_plain() {
        // owns/isLocatedIn: the PROPERTY annotation is implied by the schema
        let schema = fig1_yago_schema();
        let m = pipeline("owns/isLocatedIn", RedundancyRule::EitherSide);
        assert_eq!(m.len(), 1);
        let t = &m[0];
        assert_eq!(t.src_labels, None);
        // target CITY is implied by owns/isLocatedIn? targets(isLocatedIn)
        // = {CITY,REGION,COUNTRY}, constraint {CITY} excludes -> kept
        assert!(t.tgt_labels.is_some());
        assert_eq!(
            t.psi,
            AnnotatedPath::Plain(parse_path("owns/isLocatedIn", &schema).unwrap())
        );
    }

    #[test]
    fn canonicalize_collapses_plain_runs() {
        let schema = fig1_yago_schema();
        let a = AnnotatedPath::plain(parse_path("livesIn", &schema).unwrap());
        let b = AnnotatedPath::plain(parse_path("isLocatedIn", &schema).unwrap());
        let c = AnnotatedPath::plain(parse_path("isLocatedIn", &schema).unwrap());
        let d = AnnotatedPath::plain(parse_path("dealsWith+", &schema).unwrap());
        let region = schema.node_label("REGION").unwrap();
        // ((a/None b)/{REG} c)/None d  →  Plain(a/b) /{REG} Plain(c/d)
        let spine = AnnotatedPath::concat(
            AnnotatedPath::concat(AnnotatedPath::concat(a, None, b), Some(vec![region]), c),
            None,
            d,
        );
        let canon = canonicalize(&spine);
        match &canon {
            AnnotatedPath::Concat(left, ann, right) => {
                assert_eq!(ann.as_deref(), Some(&[region][..]));
                assert_eq!(
                    left.as_ref(),
                    &AnnotatedPath::Plain(parse_path("livesIn/isLocatedIn", &schema).unwrap())
                );
                assert_eq!(
                    right.as_ref(),
                    &AnnotatedPath::Plain(parse_path("isLocatedIn/dealsWith+", &schema).unwrap())
                );
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn canonicalize_is_semantics_preserving() {
        use sgq_graph::database::fig2_yago_database;
        use sgq_query::annotated::eval_annotated;
        let schema = fig1_yago_schema();
        let db = fig2_yago_database();
        for s in [
            "livesIn/isLocatedIn+/dealsWith+",
            "owns/isLocatedIn",
            "isLocatedIn+",
        ] {
            let e = parse_path(s, &schema).unwrap();
            let triples = infer_triples(&schema, &e, InferOptions::default()).unwrap();
            for m in merge_triples(&triples) {
                for rule in [
                    RedundancyRule::BothSides,
                    RedundancyRule::EitherSide,
                    RedundancyRule::Never,
                ] {
                    let removed = remove_redundant_with(&schema, &m, rule);
                    assert_eq!(
                        eval_annotated(&db, &m.psi),
                        eval_annotated(&db, &removed.psi),
                        "redundancy removal ({rule:?}) changed semantics for {s}"
                    );
                }
            }
        }
    }
}
