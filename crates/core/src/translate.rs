//! From merged triples back to CQTs: the function `Q(α, β, ψ)` of Fig. 9,
//! the per-triple query `C(t)` (Def. 10) and the schema-enriched query
//! `RS(ϕ)` (Def. 11).

use sgq_algebra::ast::PathExpr;
use sgq_common::{Result, VarId};
use sgq_graph::GraphSchema;
use sgq_query::annotated::AnnotatedPath;
use sgq_query::cqt::{Cqt, LabelAtom, Relation, Ucqt};
use sgq_query::vars::VarGen;

use crate::infer::{infer_triples, InferOptions};
use crate::merge::{merge_triples, MergedTriple};
use crate::redundant::{remove_redundant_with, RedundancyRule};

/// The recursive translation `Q(α, β, ψ)` of Fig. 9. Appends the produced
/// relations and label atoms to `relations` / `atoms`, allocating fresh
/// variables from `vars`.
pub fn q_translate(
    psi: &AnnotatedPath,
    alpha: VarId,
    beta: VarId,
    vars: &mut VarGen,
    relations: &mut Vec<Relation>,
    atoms: &mut Vec<LabelAtom>,
) {
    match psi {
        // Q(α, β, ϕ) = (∅, ∅, {(α, ϕ, β)})
        AnnotatedPath::Plain(e) => relations.push(Relation::plain(alpha, e.clone(), beta)),
        // Q(α, β, ψ1 /L ψ2): fresh γ, η(γ) ∈ L
        AnnotatedPath::Concat(a, ann, b) => {
            let gamma = vars.fresh();
            q_translate(a, alpha, gamma, vars, relations, atoms);
            q_translate(b, gamma, beta, vars, relations, atoms);
            if let Some(labels) = ann {
                atoms.push(LabelAtom {
                    var: gamma,
                    labels: labels.clone(),
                });
            }
        }
        // Q(α, β, ψ1[ψ2]): fresh γ, test hangs off β
        AnnotatedPath::BranchR(a, b) => {
            let gamma = vars.fresh();
            q_translate(a, alpha, beta, vars, relations, atoms);
            q_translate(b, beta, gamma, vars, relations, atoms);
        }
        // Q(α, β, [ψ1]ψ2): fresh γ, test hangs off α
        AnnotatedPath::BranchL(a, b) => {
            let gamma = vars.fresh();
            q_translate(a, alpha, gamma, vars, relations, atoms);
            q_translate(b, alpha, beta, vars, relations, atoms);
        }
        // Q(α, β, ψ1 ∩ ψ2): both sides share the endpoints
        AnnotatedPath::Conj(a, b) => {
            q_translate(a, alpha, beta, vars, relations, atoms);
            q_translate(b, alpha, beta, vars, relations, atoms);
        }
    }
}

/// The CQT `C(t)` associated with a merged triple (Def. 10): head `{α, β}`
/// plus the endpoint atoms `η(α) ∈ L1`, `η(β) ∈ L2` when constrained.
pub fn triple_to_cqt(t: &MergedTriple, alpha: VarId, beta: VarId, vars: &mut VarGen) -> Cqt {
    let mut relations = Vec::new();
    let mut atoms = Vec::new();
    q_translate(&t.psi, alpha, beta, vars, &mut relations, &mut atoms);
    if let Some(labels) = &t.src_labels {
        atoms.push(LabelAtom {
            var: alpha,
            labels: labels.clone(),
        });
    }
    if let Some(labels) = &t.tgt_labels {
        atoms.push(LabelAtom {
            var: beta,
            labels: labels.clone(),
        });
    }
    Cqt {
        head: vec![alpha, beta],
        atoms,
        relations,
    }
}

/// The schema-enriched query `RS(ϕ)` of Definition 11: one CQT per merged
/// triple, unioned. Returns `Ok(None)` when `TS(ϕ)` is empty (the query is
/// unsatisfiable on every database conforming to the schema).
pub fn schema_enriched_query(
    schema: &GraphSchema,
    phi: &PathExpr,
    opts: InferOptions,
) -> Result<Option<Ucqt>> {
    schema_enriched_query_with(schema, phi, opts, RedundancyRule::EitherSide)
}

/// [`schema_enriched_query`] with an explicit redundancy rule.
pub fn schema_enriched_query_with(
    schema: &GraphSchema,
    phi: &PathExpr,
    opts: InferOptions,
    rule: RedundancyRule,
) -> Result<Option<Ucqt>> {
    let simplified = crate::simplify::simplify(phi);
    let triples = infer_triples(schema, &simplified, opts)?;
    if triples.is_empty() {
        return Ok(None);
    }
    let merged: Vec<MergedTriple> = merge_triples(&triples)
        .iter()
        .map(|m| remove_redundant_with(schema, m, rule))
        .collect();
    let alpha = VarId::new(0);
    let beta = VarId::new(1);
    let disjuncts: Vec<Cqt> = merged
        .iter()
        .map(|t| {
            let mut vars = VarGen::above([alpha, beta]);
            triple_to_cqt(t, alpha, beta, &mut vars)
        })
        .collect();
    Ok(Some(Ucqt {
        head: vec![alpha, beta],
        disjuncts,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::schema::fig1_yago_schema;
    use sgq_query::cqt::ucqt_to_string;

    #[test]
    fn example13_rewritten_query() {
        // RS(ϕ4) = {α, β | ∃γ (α, lvIn/isL, γ) ∧ (γ, isL/dw+, β) ∧ η(γ) ∈ {REG}}
        let schema = fig1_yago_schema();
        let phi = parse_path("livesIn/isLocatedIn+/dealsWith+", &schema).unwrap();
        let q = schema_enriched_query(&schema, &phi, InferOptions::default())
            .unwrap()
            .expect("satisfiable");
        assert_eq!(q.disjuncts.len(), 1);
        let c = &q.disjuncts[0];
        assert_eq!(c.relations.len(), 2);
        assert_eq!(c.atoms.len(), 1);
        let gamma = c.atoms[0].var;
        assert_eq!(
            c.atoms[0].labels,
            vec![schema.node_label("REGION").unwrap()]
        );
        // (α, livesIn/isLocatedIn, γ)
        assert_eq!(c.relations[0].src, VarId::new(0));
        assert_eq!(c.relations[0].tgt, gamma);
        assert_eq!(
            c.relations[0].path.strip(),
            parse_path("livesIn/isLocatedIn", &schema).unwrap()
        );
        // (γ, isLocatedIn/dealsWith+, β)
        assert_eq!(c.relations[1].src, gamma);
        assert_eq!(c.relations[1].tgt, VarId::new(1));
        assert_eq!(
            c.relations[1].path.strip(),
            parse_path("isLocatedIn/dealsWith+", &schema).unwrap()
        );
        // No closure of isLocatedIn survives anywhere.
        assert!(!c.relations[0].path.is_recursive());
        assert!(c.relations[1].path.is_recursive(), "dealsWith+ remains");
    }

    #[test]
    fn unsatisfiable_query_is_detected() {
        // livesIn/owns can never match under the Fig. 1 schema
        let schema = fig1_yago_schema();
        let phi = parse_path("livesIn/owns", &schema).unwrap();
        let q = schema_enriched_query(&schema, &phi, InferOptions::default()).unwrap();
        assert!(q.is_none());
    }

    #[test]
    fn plus_expansion_becomes_union() {
        let schema = fig1_yago_schema();
        let phi = parse_path("isLocatedIn+", &schema).unwrap();
        let q = schema_enriched_query(&schema, &phi, InferOptions::default())
            .unwrap()
            .unwrap();
        // lengths 1, 2, 3 -> three disjuncts, none recursive
        assert_eq!(q.disjuncts.len(), 3);
        assert!(q
            .disjuncts
            .iter()
            .all(|c| c.relations.iter().all(|r| !r.path.is_recursive())));
        let s = ucqt_to_string(&q, &schema);
        assert!(s.contains("∪"), "{s}");
    }

    #[test]
    fn branch_translation_creates_dangling_test_var() {
        let schema = fig1_yago_schema();
        let person = schema.node_label("PERSON").unwrap();
        // ψ = owns[isMarriedTo] with an annotation forcing the split
        let psi = AnnotatedPath::branch_r(
            AnnotatedPath::concat(
                AnnotatedPath::plain(parse_path("owns", &schema).unwrap()),
                Some(vec![person]),
                AnnotatedPath::plain(parse_path("-owns", &schema).unwrap()),
            ),
            AnnotatedPath::plain(parse_path("isMarriedTo", &schema).unwrap()),
        );
        let mut vars = VarGen::above([VarId::new(0), VarId::new(1)]);
        let mut relations = Vec::new();
        let mut atoms = Vec::new();
        q_translate(
            &psi,
            VarId::new(0),
            VarId::new(1),
            &mut vars,
            &mut relations,
            &mut atoms,
        );
        // owns -> γ2, -owns γ2 -> β, isMarriedTo β -> γ1
        assert_eq!(relations.len(), 3);
        assert_eq!(atoms.len(), 1);
        // the test relation starts at β
        assert_eq!(relations[2].src, VarId::new(1));
    }

    #[test]
    fn conj_translation_shares_endpoints() {
        let schema = fig1_yago_schema();
        let psi = AnnotatedPath::conj(
            AnnotatedPath::plain(parse_path("isMarriedTo", &schema).unwrap()),
            AnnotatedPath::plain(parse_path("isMarriedTo/isMarriedTo", &schema).unwrap()),
        );
        let mut vars = VarGen::above([VarId::new(0), VarId::new(1)]);
        let mut relations = Vec::new();
        let mut atoms = Vec::new();
        q_translate(
            &psi,
            VarId::new(0),
            VarId::new(1),
            &mut vars,
            &mut relations,
            &mut atoms,
        );
        assert_eq!(relations.len(), 2);
        assert!(relations
            .iter()
            .all(|r| r.src == VarId::new(0) && r.tgt == VarId::new(1)));
    }
}
