//! Triple merging: Definition 9.
//!
//! Triples of `TS(ϕ)` sharing the same *underlying* path expression differ
//! only in their annotations; evaluating them separately and unioning
//! afterwards would duplicate work. [`merge_triples`] partitions `TS(ϕ)` by
//! underlying expression (and annotation *shape*) and merges each group
//! into a single [`MergedTriple`] whose annotations are label sets.

use std::collections::BTreeMap;

use sgq_algebra::ast::PathExpr;
use sgq_graph::GraphSchema;
use sgq_query::annotated::{AnnotatedPath, LabelSet};
use sgq_query::cqt::annotated_to_string;

use crate::triple::Triple;

/// The merged triple `M(T) = (L1, Ψ, L2)` of Definition 9.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedTriple {
    /// Allowed source labels (`None` once proven redundant, §3.2.2).
    pub src_labels: Option<LabelSet>,
    /// The merged annotated path expression.
    pub psi: AnnotatedPath,
    /// Allowed target labels (`None` once proven redundant).
    pub tgt_labels: Option<LabelSet>,
    /// Fixed-length plus-expansion lengths carried through from the group
    /// (Table 6 statistics).
    pub plus_paths: Vec<u16>,
}

impl MergedTriple {
    /// Renders in the paper's `(L1, Ψ, L2)` notation.
    pub fn display(&self, schema: &GraphSchema) -> String {
        let side = |ls: &Option<LabelSet>| match ls {
            None => "∅".to_string(),
            Some(ls) => {
                let names: Vec<&str> = ls.iter().map(|&l| schema.node_label_name(l)).collect();
                format!("{{{}}}", names.join(","))
            }
        };
        format!(
            "({}, {}, {})",
            side(&self.src_labels),
            annotated_to_string(&self.psi, schema),
            side(&self.tgt_labels)
        )
    }
}

/// Shape fingerprint: the annotated expression with every label set
/// replaced by a placeholder, so that `Some`/`None` positions (but not
/// their contents) distinguish groups.
fn shape(psi: &AnnotatedPath) -> AnnotatedPath {
    match psi {
        AnnotatedPath::Plain(e) => AnnotatedPath::Plain(e.clone()),
        AnnotatedPath::Concat(a, ann, b) => {
            AnnotatedPath::concat(shape(a), ann.as_ref().map(|_| Vec::new()), shape(b))
        }
        AnnotatedPath::BranchR(a, b) => AnnotatedPath::branch_r(shape(a), shape(b)),
        AnnotatedPath::BranchL(a, b) => AnnotatedPath::branch_l(shape(a), shape(b)),
        AnnotatedPath::Conj(a, b) => AnnotatedPath::conj(shape(a), shape(b)),
    }
}

/// Computes `MS(ϕ)`: partitions `triples` by underlying expression and
/// merges each group (Definition 9).
pub fn merge_triples(triples: &[Triple]) -> Vec<MergedTriple> {
    let mut groups: BTreeMap<(PathExpr, AnnotatedPath), Vec<&Triple>> = BTreeMap::new();
    for t in triples {
        groups
            .entry((t.psi.strip(), shape(&t.psi)))
            .or_default()
            .push(t);
    }
    let mut out = Vec::with_capacity(groups.len());
    for (_, group) in groups {
        let mut src: LabelSet = group.iter().map(|t| t.src).collect();
        let mut tgt: LabelSet = group.iter().map(|t| t.tgt).collect();
        sgq_common::sorted::normalize(&mut src);
        sgq_common::sorted::normalize(&mut tgt);
        let mut psi = group[0].psi.clone();
        for t in &group[1..] {
            psi = psi
                .merge_with(&t.psi)
                .expect("triples in a merge group share their annotation shape");
        }
        out.push(MergedTriple {
            src_labels: Some(src),
            psi,
            tgt_labels: Some(tgt),
            plus_paths: group[0].plus_paths.clone(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::{infer_triples, InferOptions};
    use sgq_algebra::parser::parse_path;
    use sgq_common::NodeLabelId;
    use sgq_graph::schema::fig1_yago_schema;

    fn merged(s: &str) -> Vec<MergedTriple> {
        let schema = fig1_yago_schema();
        let e = parse_path(s, &schema).unwrap();
        let t = infer_triples(&schema, &e, InferOptions::default()).unwrap();
        merge_triples(&t)
    }

    #[test]
    fn single_triple_groups_alone() {
        let schema = fig1_yago_schema();
        let m = merged("owns");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].display(&schema), "({PERSON}, owns, {PROPERTY})");
    }

    #[test]
    fn overloaded_label_merges_into_one() {
        // isLocatedIn: 3 triples, same underlying expression -> 1 merged
        let schema = fig1_yago_schema();
        let m = merged("isLocatedIn");
        assert_eq!(m.len(), 1);
        assert_eq!(
            m[0].display(&schema),
            "({CITY,PROPERTY,REGION}, isLocatedIn, {CITY,REGION,COUNTRY})"
        );
    }

    #[test]
    fn plus_expansion_groups_by_length() {
        // TS(isLocatedIn+) has 6 triples over 3 underlying expressions
        // (lengths 1, 2 and 3) -> 3 merged triples.
        let m = merged("isLocatedIn+");
        assert_eq!(m.len(), 3);
        let mut lens: Vec<usize> = m.iter().map(|t| t.plus_paths[0] as usize).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn example11_merge() {
        // Two hand-built triples with the same underlying a+/b/d
        let schema = fig1_yago_schema();
        let a_plus = AnnotatedPath::plain(parse_path("isMarriedTo+", &schema).unwrap());
        let b = AnnotatedPath::plain(parse_path("owns", &schema).unwrap());
        let d = AnnotatedPath::plain(parse_path("livesIn", &schema).unwrap());
        let mk = |ann1: u32, ann2: u32, src: u32, tgt: u32| {
            Triple::new(
                NodeLabelId::new(src),
                AnnotatedPath::concat(
                    AnnotatedPath::concat(
                        a_plus.clone(),
                        Some(vec![NodeLabelId::new(ann1)]),
                        b.clone(),
                    ),
                    Some(vec![NodeLabelId::new(ann2)]),
                    d.clone(),
                ),
                NodeLabelId::new(tgt),
            )
        };
        let t1 = mk(10, 12, 0, 3);
        let t2 = mk(11, 13, 0, 4);
        let m = merge_triples(&[t1, t2]);
        assert_eq!(m.len(), 1);
        let mt = &m[0];
        assert_eq!(mt.src_labels.as_deref(), Some(&[NodeLabelId::new(0)][..]));
        assert_eq!(
            mt.tgt_labels.as_deref(),
            Some(&[NodeLabelId::new(3), NodeLabelId::new(4)][..])
        );
        match &mt.psi {
            AnnotatedPath::Concat(inner, ann2, _) => {
                assert_eq!(
                    ann2.as_deref(),
                    Some(&[NodeLabelId::new(12), NodeLabelId::new(13)][..])
                );
                match inner.as_ref() {
                    AnnotatedPath::Concat(_, ann1, _) => assert_eq!(
                        ann1.as_deref(),
                        Some(&[NodeLabelId::new(10), NodeLabelId::new(11)][..])
                    ),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn union_splits_groups() {
        let m = merged("owns | livesIn");
        assert_eq!(m.len(), 2);
    }
}
