//! The resource governor: lock-free memory accounting for query
//! execution.
//!
//! A [`ResourceGovernor`] tracks the bytes of materialised intermediate
//! state (`Relation` rows are flat `u32`s, so a relation costs
//! `rows × arity × 4` bytes) across every in-flight query, with two
//! ceilings:
//!
//! * a **per-query** limit — breaching it aborts *that query* with
//!   [`SgqError::BudgetExceeded`] instead of OOM-ing the process;
//! * a **global** limit — breaching it aborts the charging query too,
//!   and *approaching* it (the pressure threshold) is exposed via
//!   [`ResourceGovernor::under_pressure`] so the serving layer can shed
//!   load before the hard ceiling is ever hit.
//!
//! Accounting is a pair of relaxed atomic adds per materialised batch —
//! no locks, safe to call from every morsel worker concurrently. Charges
//! are released wholesale when the query's [`QueryBudget`] drops, so the
//! governor's balance returns to zero once no query is in flight (the
//! chaos harness asserts exactly this after every query).
//!
//! Like the row budget, enforcement is *at materialisation time*: the
//! error fires on the batch that crosses the ceiling, so a query can
//! overshoot by at most one operator's output batch (plus one in-flight
//! morsel per worker under parallel execution).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::{Result, SgqError};

/// Bytes charged for a flat-`u32` relation of `rows` rows × `arity`
/// columns — the unit every charging point uses, kept in one place so
/// accounting can never disagree with itself.
#[inline]
pub fn relation_bytes(rows: usize, arity: usize) -> usize {
    rows.saturating_mul(arity).saturating_mul(4)
}

/// Process-wide (or service-wide) memory accounting over all in-flight
/// queries. Construction fixes the ceilings; everything else is
/// lock-free atomics.
#[derive(Debug)]
pub struct ResourceGovernor {
    /// Global ceiling in bytes (0 = unlimited).
    global_limit: usize,
    /// Bytes at which [`ResourceGovernor::under_pressure`] starts
    /// reporting `true` (0 = never).
    pressure_bytes: usize,
    /// Bytes currently charged across every live [`QueryBudget`].
    used: AtomicUsize,
    /// High-water mark of `used`.
    peak: AtomicUsize,
    /// Live [`QueryBudget`]s.
    active: AtomicUsize,
}

impl ResourceGovernor {
    /// A governor with a `global_limit`-byte ceiling (0 = unlimited) and
    /// a pressure threshold at `pressure_factor` of it (clamped to
    /// `[0, 1]`; irrelevant when unlimited).
    pub fn new(global_limit: usize, pressure_factor: f64) -> Arc<Self> {
        let f = pressure_factor.clamp(0.0, 1.0);
        Arc::new(ResourceGovernor {
            global_limit,
            pressure_bytes: if global_limit == 0 {
                0
            } else {
                ((global_limit as f64 * f) as usize).max(1)
            },
            used: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
        })
    }

    /// A governor that only accounts (no ceilings, never under
    /// pressure).
    pub fn unlimited() -> Arc<Self> {
        Self::new(0, 1.0)
    }

    /// Opens a query's budget with a `query_limit`-byte per-query
    /// ceiling (0 = unlimited). Dropping the returned handle releases
    /// everything the query charged.
    pub fn begin(self: &Arc<Self>, query_limit: usize) -> Arc<QueryBudget> {
        self.active.fetch_add(1, Ordering::Relaxed);
        Arc::new(QueryBudget {
            governor: Arc::clone(self),
            limit: query_limit,
            used: AtomicUsize::new(0),
        })
    }

    /// Bytes currently charged across all live queries.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of [`ResourceGovernor::used`] since construction.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// The global ceiling in bytes (0 = unlimited).
    pub fn global_limit(&self) -> usize {
        self.global_limit
    }

    /// Live query budgets (opened, not yet dropped).
    pub fn active_queries(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Bytes left under the global ceiling (`usize::MAX` when
    /// unlimited).
    pub fn headroom(&self) -> usize {
        if self.global_limit == 0 {
            usize::MAX
        } else {
            self.global_limit.saturating_sub(self.used())
        }
    }

    /// Whether charged bytes have crossed the pressure threshold — the
    /// serving layer's cue to degrade gracefully (shrink admission,
    /// re-prepare oversized plans) before the hard ceiling aborts
    /// queries.
    pub fn under_pressure(&self) -> bool {
        self.pressure_bytes > 0 && self.used() >= self.pressure_bytes
    }
}

/// One query's slice of the governor: charge on materialisation, release
/// wholesale on drop. Shared by `Arc` between the serial executor and
/// its morsel workers.
#[derive(Debug)]
pub struct QueryBudget {
    governor: Arc<ResourceGovernor>,
    /// Per-query ceiling in bytes (0 = unlimited).
    limit: usize,
    /// Bytes this query has charged.
    used: AtomicUsize,
}

impl QueryBudget {
    /// Charges `bytes` against the query and the governor, failing with
    /// [`SgqError::BudgetExceeded`] when either ceiling is crossed. The
    /// charge sticks even on failure (released on drop), so concurrent
    /// chargers observe a consistent balance while the query unwinds.
    pub fn charge(&self, bytes: usize) -> Result<()> {
        if bytes == 0 {
            return Ok(());
        }
        let query_total = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        let global_total = self.governor.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.governor
            .peak
            .fetch_max(global_total, Ordering::Relaxed);
        if self.limit > 0 && query_total > self.limit {
            return Err(SgqError::BudgetExceeded {
                used: query_total,
                limit: self.limit,
            });
        }
        let global_limit = self.governor.global_limit;
        if global_limit > 0 && global_total > global_limit {
            return Err(SgqError::BudgetExceeded {
                used: global_total,
                limit: global_limit,
            });
        }
        Ok(())
    }

    /// Bytes this query has charged so far.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// The per-query ceiling in bytes (0 = unlimited).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// The governor this budget charges into.
    pub fn governor(&self) -> &Arc<ResourceGovernor> {
        &self.governor
    }
}

impl Drop for QueryBudget {
    fn drop(&mut self) {
        let charged = *self.used.get_mut();
        self.governor.used.fetch_sub(charged, Ordering::Relaxed);
        self.governor.active.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_bytes_is_rows_times_arity_times_four() {
        assert_eq!(relation_bytes(10, 2), 80);
        assert_eq!(relation_bytes(0, 3), 0);
        assert_eq!(relation_bytes(usize::MAX, 2), usize::MAX, "saturates");
    }

    #[test]
    fn per_query_ceiling_aborts_and_releases() {
        let gov = ResourceGovernor::new(0, 0.75);
        let budget = gov.begin(100);
        budget.charge(60).unwrap();
        assert_eq!(budget.used(), 60);
        assert_eq!(gov.used(), 60);
        let err = budget.charge(50).unwrap_err();
        assert!(
            matches!(
                err,
                SgqError::BudgetExceeded {
                    used: 110,
                    limit: 100
                }
            ),
            "got {err}"
        );
        // The failed charge still sticks until release.
        assert_eq!(gov.used(), 110);
        drop(budget);
        assert_eq!(gov.used(), 0, "drop releases the full balance");
        assert_eq!(gov.active_queries(), 0);
        assert_eq!(gov.peak(), 110);
    }

    #[test]
    fn global_ceiling_aborts_the_charging_query() {
        let gov = ResourceGovernor::new(100, 0.5);
        let a = gov.begin(0);
        let b = gov.begin(0);
        a.charge(70).unwrap();
        assert!(gov.under_pressure(), "70 >= 50% of 100");
        assert_eq!(gov.headroom(), 30);
        let err = b.charge(40).unwrap_err();
        assert!(err.is_budget(), "got {err}");
        drop(b);
        // The surviving query's balance is intact.
        assert_eq!(gov.used(), 70);
        drop(a);
        assert_eq!(gov.used(), 0);
    }

    #[test]
    fn unlimited_governor_only_accounts() {
        let gov = ResourceGovernor::unlimited();
        let budget = gov.begin(0);
        budget.charge(usize::MAX / 2).unwrap();
        assert!(!gov.under_pressure());
        assert_eq!(gov.headroom(), usize::MAX);
        drop(budget);
        assert_eq!(gov.used(), 0);
    }

    #[test]
    fn zero_byte_charges_are_free() {
        let gov = ResourceGovernor::new(1, 1.0);
        let budget = gov.begin(1);
        for _ in 0..1000 {
            budget.charge(0).unwrap();
        }
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn concurrent_charges_balance_to_zero() {
        let gov = ResourceGovernor::new(0, 1.0);
        let threads = 8;
        let per_thread = 1000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let budget = gov.begin(0);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        budget.charge(4).unwrap();
                    }
                    budget.used()
                })
            })
            .collect();
        let mut total = 0;
        for h in handles {
            total += h.join().unwrap();
        }
        assert_eq!(total, threads * per_thread * 4);
        assert_eq!(gov.used(), 0, "every budget dropped, balance zero");
        assert!(gov.peak() >= 4, "peak observed some charge");
    }

    #[test]
    fn pressure_threshold_tracks_the_factor() {
        let gov = ResourceGovernor::new(1000, 0.75);
        let budget = gov.begin(0);
        budget.charge(700).unwrap();
        assert!(!gov.under_pressure());
        budget.charge(50).unwrap();
        assert!(gov.under_pressure(), "750 crosses 75% of 1000");
    }
}
