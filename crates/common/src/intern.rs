//! A simple string interner.
//!
//! Labels and property keys are interned once at schema-construction time;
//! afterwards all comparisons are `u32` comparisons. The interner is owned by
//! the schema (or database) and is not global, so independent schemas never
//! share id spaces by accident.

use crate::hash::FxHashMap;

/// Interns strings, handing out dense `u32` ids in insertion order.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    names: Vec<Box<str>>,
    index: FxHashMap<Box<str>, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.index.insert(boxed, id);
        id
    }

    /// Looks up the id of `name` without interning.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Resolves an id, returning `None` for foreign ids.
    pub fn try_resolve(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(|s| &**s)
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names.iter().enumerate().map(|(i, s)| (i as u32, &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("PERSON");
        let b = i.intern("PERSON");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("c"), 2);
        assert_eq!(i.resolve(1), "b");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        i.intern("x");
        assert_eq!(i.get("x"), Some(0));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn try_resolve_handles_foreign_ids() {
        let i = Interner::new();
        assert_eq!(i.try_resolve(3), None);
    }

    #[test]
    fn iter_yields_all() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let v: Vec<_> = i.iter().collect();
        assert_eq!(v, vec![(0, "a"), (1, "b")]);
    }
}
