//! Deterministic fault injection for robustness testing.
//!
//! A *fault point* is a named site in the engine (`"exec.scan"`,
//! `"service.dispatch"`, ...) guarded by the [`faultpoint!`](crate::faultpoint) macro.
//! Disarmed — the default, and the only state production code ever
//! sees — a fault point is a single relaxed atomic load and a
//! predicted-not-taken branch: effectively free. Armed via [`arm`], each
//! visit consults a seeded SplitMix64 stream and, with the configured
//! probability, either returns [`SgqError::Transient`] (the common case:
//! a classified, retryable failure) or panics (to exercise the serving
//! layer's panic containment).
//!
//! Determinism: the decision stream is a single seeded generator
//! consumed in visit order, so a *sequential* workload replays the exact
//! same fault schedule for the same seed. The chaos harness drives the
//! catalog with one client for precisely this reason.
//!
//! The state is process-global. Tests that arm faults must serialise
//! against each other (the service crate keeps all of them in one
//! integration binary behind a mutex) and must [`disarm`] on every exit
//! path — [`ArmedGuard`] does this on drop.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::error::{Result, SgqError};
use crate::rng::Rng;

/// What an armed fault point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return [`SgqError::Transient`] naming the site (retryable).
    Error,
    /// Panic with a message naming the site (exercises containment).
    Panic,
}

/// A fault-injection plan: which sites fire, how often, and how.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the SplitMix64 decision stream.
    pub seed: u64,
    /// Per-visit fire probability in `[0, 1]`.
    pub probability: f64,
    /// Restrict firing to this site (`None` = every site).
    pub site: Option<&'static str>,
    /// What firing does.
    pub kind: FaultKind,
}

impl FaultConfig {
    /// A plan firing [`FaultKind::Error`] at every site with the given
    /// seed and probability.
    pub fn errors(seed: u64, probability: f64) -> Self {
        FaultConfig {
            seed,
            probability,
            site: None,
            kind: FaultKind::Error,
        }
    }
}

/// Fire counts per site from an armed session, returned by [`disarm`].
pub type FireReport = BTreeMap<&'static str, u64>;

struct FaultState {
    rng: Rng,
    probability: f64,
    site: Option<&'static str>,
    kind: FaultKind,
    fired: FireReport,
    visited: FireReport,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<FaultState>> = Mutex::new(None);

/// Whether any fault plan is armed. This is the fast-path guard the
/// [`faultpoint!`](crate::faultpoint) macro checks before touching the mutex: one relaxed
/// load when disarmed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Installs a fault plan. Replaces any previously armed plan (its fire
/// report is discarded).
pub fn arm(config: FaultConfig) {
    let mut guard = STATE.lock().unwrap();
    *guard = Some(FaultState {
        rng: Rng::seed_from_u64(config.seed),
        probability: config.probability.clamp(0.0, 1.0),
        site: config.site,
        kind: config.kind,
        fired: FireReport::new(),
        visited: FireReport::new(),
    });
    ARMED.store(true, Ordering::Relaxed);
}

/// Removes the armed plan and returns how many times each site fired
/// (empty if nothing was armed).
pub fn disarm() -> FireReport {
    let mut guard = STATE.lock().unwrap();
    ARMED.store(false, Ordering::Relaxed);
    guard.take().map(|s| s.fired).unwrap_or_default()
}

/// Per-site visit counts for the armed plan (how often execution reached
/// each fault point, fired or not). Empty when disarmed.
pub fn visit_report() -> FireReport {
    STATE
        .lock()
        .unwrap()
        .as_ref()
        .map(|s| s.visited.clone())
        .unwrap_or_default()
}

/// Arms a plan and disarms it when the returned guard drops, so a
/// panicking or early-returning test cannot leak an armed plan into the
/// next one.
pub fn armed_scope(config: FaultConfig) -> ArmedGuard {
    arm(config);
    ArmedGuard { _private: () }
}

/// Disarms the global fault plan on drop. See [`armed_scope`].
pub struct ArmedGuard {
    _private: (),
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        let _ = disarm();
    }
}

/// The slow path behind [`faultpoint!`](crate::faultpoint): consults the armed plan and
/// fires with the configured probability. Call only when [`armed`] is
/// true (calling while disarmed is a harmless no-op).
pub fn check(site: &'static str) -> Result<()> {
    let mut guard = STATE.lock().unwrap();
    let Some(state) = guard.as_mut() else {
        return Ok(());
    };
    if let Some(only) = state.site {
        if only != site {
            return Ok(());
        }
    }
    *state.visited.entry(site).or_insert(0) += 1;
    if !state.rng.gen_bool(state.probability) {
        return Ok(());
    }
    *state.fired.entry(site).or_insert(0) += 1;
    match state.kind {
        FaultKind::Error => Err(SgqError::Transient { site }),
        FaultKind::Panic => {
            // Release the lock before unwinding so the containment layer
            // (and later tests) can still reach the fault state.
            drop(guard);
            panic!("injected fault at {site}");
        }
    }
}

/// Guards a named fault-injection site.
///
/// Expands to a relaxed atomic load when disarmed — zero cost on every
/// production path — and to a [`fault::check`](check) call (which may
/// return `Err(SgqError::Transient)` via `?`, or panic under a
/// [`FaultKind::Panic`] plan) when a plan is armed.
///
/// ```
/// # fn scan() -> sgq_common::Result<()> {
/// sgq_common::faultpoint!("exec.scan");
/// # Ok(())
/// # }
/// ```
#[macro_export]
macro_rules! faultpoint {
    ($site:literal) => {
        if $crate::fault::armed() {
            $crate::fault::check($site)?;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fault state is process-global; serialise the tests in this module.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn visit(site: &'static str) -> Result<()> {
        faultpoint!("test.a");
        faultpoint!("test.b");
        let _ = site;
        Ok(())
    }

    #[test]
    fn disarmed_is_a_no_op() {
        let _l = locked();
        let _ = disarm();
        assert!(!armed());
        for _ in 0..100 {
            visit("test.a").unwrap();
        }
        assert!(disarm().is_empty());
    }

    #[test]
    fn probability_one_fires_every_visit() {
        let _l = locked();
        let _guard = armed_scope(FaultConfig::errors(42, 1.0));
        let err = visit("test.a").unwrap_err();
        assert_eq!(err, SgqError::Transient { site: "test.a" });
    }

    #[test]
    fn site_filter_restricts_firing() {
        let _l = locked();
        let _guard = armed_scope(FaultConfig {
            seed: 7,
            probability: 1.0,
            site: Some("test.b"),
            kind: FaultKind::Error,
        });
        // test.a is visited first but filtered out; test.b fires.
        let err = visit("test.a").unwrap_err();
        assert_eq!(err, SgqError::Transient { site: "test.b" });
        let report = disarm();
        assert_eq!(report.get("test.b"), Some(&1));
        assert_eq!(report.get("test.a"), None);
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let _l = locked();
        let run = |seed: u64| -> Vec<bool> {
            let _guard = armed_scope(FaultConfig::errors(seed, 0.3));
            (0..64).map(|_| visit("test.a").is_err()).collect()
        };
        let a = run(99);
        let b = run(99);
        let c = run(100);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        assert!(a.iter().any(|&f| f), "p=0.3 over 64 visits fires");
        assert!(!a.iter().all(|&f| f), "...but not every time");
    }

    #[test]
    fn fire_report_counts_per_site() {
        let _l = locked();
        arm(FaultConfig::errors(5, 1.0));
        for _ in 0..3 {
            let _ = visit("test.a");
        }
        let visits = visit_report();
        assert_eq!(visits.get("test.a"), Some(&3));
        let report = disarm();
        assert_eq!(report.get("test.a"), Some(&3), "fires on first site only");
        assert!(!armed());
    }

    #[test]
    fn panic_kind_panics_with_the_site_name() {
        let _l = locked();
        let _guard = armed_scope(FaultConfig {
            seed: 1,
            probability: 1.0,
            site: None,
            kind: FaultKind::Panic,
        });
        let caught = std::panic::catch_unwind(|| {
            let _ = visit("test.a");
        })
        .unwrap_err();
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, "injected fault at test.a");
    }
}
