//! Set algebra over sorted, deduplicated vectors.
//!
//! Both engines use `Vec<(NodeId, NodeId)>`-style sorted pair sets as their
//! common relation currency; this module provides the merge-based union /
//! intersection / difference primitives and the normalisation helper they
//! rely on.

/// Sorts and deduplicates `v` in place, making it a canonical set.
pub fn normalize<T: Ord>(v: &mut Vec<T>) {
    v.sort_unstable();
    v.dedup();
}

/// Returns whether `v` is sorted strictly ascending (i.e. a canonical set).
pub fn is_normalized<T: Ord>(v: &[T]) -> bool {
    v.windows(2).all(|w| w[0] < w[1])
}

/// Merge-union of two canonical sets.
pub fn union<T: Ord + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    debug_assert!(is_normalized(a) && is_normalized(b));
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Merge-intersection of two canonical sets.
///
/// Uses galloping (exponential) search when one side is much smaller, which
/// matters when intersecting a tiny label filter with a large edge relation.
pub fn intersect<T: Ord + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    debug_assert!(is_normalized(a) && is_normalized(b));
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return Vec::new();
    }
    // Galloping pays off when the size ratio is large.
    if large.len() / small.len().max(1) >= 16 {
        let mut out = Vec::with_capacity(small.len());
        let mut lo = 0usize;
        for x in small {
            match gallop(&large[lo..], x) {
                Ok(pos) => {
                    out.push(x.clone());
                    lo += pos + 1;
                }
                Err(pos) => lo += pos,
            }
            if lo >= large.len() {
                break;
            }
        }
        return out;
    }
    let mut out = Vec::with_capacity(small.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Merge-difference `a \ b` of two canonical sets.
pub fn difference<T: Ord + Clone>(a: &[T], b: &[T]) -> Vec<T> {
    debug_assert!(is_normalized(a) && is_normalized(b));
    let mut out = Vec::with_capacity(a.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out
}

/// Binary membership test on a canonical set.
pub fn contains<T: Ord>(a: &[T], x: &T) -> bool {
    a.binary_search(x).is_ok()
}

/// Exponential ("galloping") search for `x` in sorted slice `s`.
///
/// Returns `Ok(pos)` if found, `Err(insertion_pos)` otherwise — the same
/// contract as `slice::binary_search`.
fn gallop<T: Ord>(s: &[T], x: &T) -> Result<usize, usize> {
    let mut hi = 1usize;
    while hi < s.len() && &s[hi] < x {
        hi *= 2;
    }
    let lo = hi / 2;
    // The probe at `hi` satisfies s[hi] >= x (or is out of bounds), so the
    // match may sit exactly at index `hi`: the search window must include
    // it.
    let hi = (hi + 1).min(s.len());
    match s[lo..hi].binary_search(x) {
        Ok(p) => Ok(lo + p),
        Err(p) => Err(lo + p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_sorts_and_dedups() {
        let mut v = vec![3, 1, 2, 3, 1];
        normalize(&mut v);
        assert_eq!(v, vec![1, 2, 3]);
        assert!(is_normalized(&v));
    }

    #[test]
    fn union_basic() {
        assert_eq!(union(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(union::<i32>(&[], &[]), Vec::<i32>::new());
        assert_eq!(union(&[1], &[]), vec![1]);
    }

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[3, 4, 7, 9]), vec![3, 7]);
        assert_eq!(intersect::<i32>(&[1, 2], &[]), Vec::<i32>::new());
    }

    #[test]
    fn intersect_galloping_path() {
        let large: Vec<u32> = (0..10_000).map(|x| x * 2).collect();
        let small = vec![3u32, 400, 401, 9998];
        assert_eq!(intersect(&small, &large), vec![400, 9998]);
        assert_eq!(intersect(&large, &small), vec![400, 9998]);
    }

    #[test]
    fn gallop_finds_match_at_probe_boundary() {
        // Regression: a match sitting exactly at the doubling probe index
        // (1, 2, 4, ...) must be found. Found by the Theorem 1 proptest.
        assert_eq!(intersect(&[5], &[1, 5]), vec![5]);
        let large: Vec<u32> = (0..1000).collect();
        for x in [1u32, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
            assert_eq!(intersect(&[x], &large), vec![x], "boundary {x}");
        }
    }

    #[test]
    fn intersect_exhaustive_against_naive() {
        // Cross-check the galloping path against the merge path on dense
        // ratio patterns.
        let large: Vec<u32> = (0..500).map(|x| x * 3).collect();
        for start in 0..20u32 {
            let small: Vec<u32> = (start..start + 4).map(|x| x * 7).collect();
            let naive: Vec<u32> = small
                .iter()
                .copied()
                .filter(|x| large.binary_search(x).is_ok())
                .collect();
            assert_eq!(intersect(&small, &large), naive, "start {start}");
        }
    }

    #[test]
    fn difference_basic() {
        assert_eq!(difference(&[1, 2, 3, 4], &[2, 4]), vec![1, 3]);
        assert_eq!(difference(&[1, 2], &[1, 2]), Vec::<i32>::new());
        assert_eq!(difference::<i32>(&[], &[1]), Vec::<i32>::new());
    }

    #[test]
    fn contains_basic() {
        assert!(contains(&[1, 4, 9], &4));
        assert!(!contains(&[1, 4, 9], &5));
    }

    #[test]
    fn set_laws_on_samples() {
        let a = vec![1, 2, 5, 9, 12];
        let b = vec![2, 3, 9, 10];
        let u = union(&a, &b);
        let i = intersect(&a, &b);
        // |A ∪ B| + |A ∩ B| == |A| + |B|
        assert_eq!(u.len() + i.len(), a.len() + b.len());
        // A \ B and A ∩ B partition A
        let d = difference(&a, &b);
        assert_eq!(union(&d, &i), a);
    }
}
