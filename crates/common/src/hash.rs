//! A fast, non-cryptographic hasher in the style of `rustc-hash` (FxHash).
//!
//! The standard library's SipHash is DoS-resistant but slow for the small
//! integer keys (node ids, label ids) that dominate this workload. The Fx
//! algorithm — multiply by a large odd constant and rotate — is the one used
//! inside rustc and is a consistent win for integer-keyed tables (see the
//! Rust Performance Book, "Hashing"). We implement it locally rather than
//! pull in a dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplication constant (golden-ratio derived, odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Convenience constructor: an empty [`FxHashMap`] with `cap` capacity.
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Convenience constructor: an empty [`FxHashSet`] with `cap` capacity.
pub fn set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        // trailing bytes beyond an 8-byte boundary must matter
        assert_ne!(hash_of(&"12345678"), hash_of(&"123456789"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = map_with_capacity(4);
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&2), Some(&"two"));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn set_with_capacity_works() {
        let mut s: FxHashSet<u64> = set_with_capacity(8);
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
    }
}
