//! The two execution axes shared across the workspace: which engine
//! runs a query ([`Backend`]) and whether the paper's schema-based
//! rewrite is applied first ([`Approach`]).
//!
//! These are vocabulary types, not behaviour: the experiment harness
//! keys its records on them, the serving layer folds them into
//! plan-cache keys, and both must agree on the variants and their
//! rendered names — so they live here, below both.

/// Which engine executes a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The property-graph engine (the Neo4j stand-in).
    Graph,
    /// The recursive relational algebra engine with the logical
    /// optimiser (the PostgreSQL stand-in).
    Relational,
    /// The relational engine with the logical optimiser disabled — the
    /// stand-in for the paper's "MySQL/SQLite are much slower" remark,
    /// and the serving layer's optimiser ablation.
    RelationalUnoptimized,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Graph => write!(f, "graph"),
            Backend::Relational => write!(f, "relational"),
            Backend::RelationalUnoptimized => write!(f, "relational-unopt"),
        }
    }
}

/// Baseline (initial query) or the schema-based rewrite (§5.1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// The initial, non-enriched query.
    Baseline,
    /// The schema-enriched query (running the baseline plan on reverts).
    Schema,
}

impl std::fmt::Display for Approach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Approach::Baseline => write!(f, "B"),
            Approach::Schema => write!(f, "S"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_are_stable() {
        // Experiment records and plan-cache key signatures both embed
        // these strings; changing them invalidates stored artifacts.
        assert_eq!(Backend::Graph.to_string(), "graph");
        assert_eq!(Backend::Relational.to_string(), "relational");
        assert_eq!(
            Backend::RelationalUnoptimized.to_string(),
            "relational-unopt"
        );
        assert_eq!(Approach::Baseline.to_string(), "B");
        assert_eq!(Approach::Schema.to_string(), "S");
    }
}
