//! Compact `u32` newtype identifiers.
//!
//! Every entity in the system — nodes, edges, labels, property keys, query
//! variables — is referred to by a 4-byte id. This keeps hot structures
//! small (Rust Performance Book, "Type Sizes") and makes hashing cheap.

/// Defines a `u32` newtype id with the standard conversions.
macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Constructs the id from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Value as a `usize` index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(raw: usize) -> Self {
                debug_assert!(raw <= u32::MAX as usize);
                Self(raw as u32)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a node in a graph database (or schema).
    NodeId,
    "n"
);
define_id!(
    /// Identifier of an edge in a graph database (or schema).
    EdgeId,
    "e"
);
define_id!(
    /// Identifier of an interned node label (`PERSON`, `CITY`, ...).
    NodeLabelId,
    "ln"
);
define_id!(
    /// Identifier of an interned edge label (`knows`, `isLocatedIn`, ...).
    EdgeLabelId,
    "le"
);
define_id!(
    /// Identifier of an interned property key (`name`, `age`, ...).
    KeyId,
    "k"
);
define_id!(
    /// Identifier of a query variable.
    VarId,
    "?x"
);
define_id!(
    /// Identifier of an interned relational column name (`v0`, `Sr`, ...).
    ColId,
    "c"
);
define_id!(
    /// Identifier of an interned fixpoint recursion variable (`X0`, ...).
    RecVarId,
    "X"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let n = NodeId::new(7);
        assert_eq!(n.raw(), 7);
        assert_eq!(n.index(), 7);
        assert_eq!(NodeId::from(7u32), n);
        assert_eq!(NodeId::from(7usize), n);
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(EdgeLabelId::new(1).to_string(), "le1");
        assert_eq!(VarId::new(0).to_string(), "?x0");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }
}
