//! A minimal JSON writer.
//!
//! The workspace is dependency-free (no `serde`), so every component that
//! exports JSON — the harness's `--out results.json` records and the
//! service's metrics snapshots — renders through this module instead of
//! each hand-rolling its own escaping rules.
//!
//! Two levels of API:
//!
//! * low-level helpers ([`escape`], [`number`]) for callers that stream
//!   their own layout (the harness keeps its pretty record format),
//! * a [`JsonValue`] tree builder with compact rendering for callers
//!   that just want a well-formed document (service metrics).

use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal (including the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values render as `null` — and debug builds *assert*: every
/// producer is expected to guard its divisions at the source (0-sample
/// snapshots report 0.0), so a non-finite value reaching the writer is a
/// bug that tests and CI should catch rather than serialise away.
pub fn number(v: f64) -> String {
    debug_assert!(
        v.is_finite(),
        "non-finite value {v} reached the JSON writer — guard the division at its source"
    );
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; `u64` covers every counter we export).
    Int(u64),
    /// A float (non-finite renders as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, JsonValue)>) -> Self {
        JsonValue::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Renders the tree compactly (no insignificant whitespace after
    /// separators beyond one space, stable key order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Num(v) => out.push_str(&number(*v)),
            JsonValue::Str(s) => out.push_str(&escape(s)),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&escape(k));
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.0), "0");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite")]
    fn non_finite_numbers_assert_in_debug() {
        let _ = number(f64::NAN);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn non_finite_numbers_render_null_in_release() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn tree_rendering() {
        let v = JsonValue::obj([
            ("name", JsonValue::str("p50")),
            ("ms", JsonValue::Num(1.25)),
            ("hits", JsonValue::Int(3)),
            ("ok", JsonValue::Bool(true)),
            (
                "tags",
                JsonValue::Arr(vec![JsonValue::Null, JsonValue::str("a")]),
            ),
        ]);
        assert_eq!(
            v.render(),
            "{\"name\": \"p50\", \"ms\": 1.25, \"hits\": 3, \"ok\": true, \"tags\": [null, \"a\"]}"
        );
    }
}
