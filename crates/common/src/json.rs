//! A minimal JSON writer.
//!
//! The workspace is dependency-free (no `serde`), so every component that
//! exports JSON — the harness's `--out results.json` records and the
//! service's metrics snapshots — renders through this module instead of
//! each hand-rolling its own escaping rules.
//!
//! Two levels of API:
//!
//! * low-level helpers ([`escape`], [`number`]) for callers that stream
//!   their own layout (the harness keeps its pretty record format),
//! * a [`JsonValue`] tree builder with compact rendering for callers
//!   that just want a well-formed document (service metrics),
//! * a [`parse`] function back into the tree, so gates and tests can
//!   assert that exported documents (metrics snapshots, Chrome traces)
//!   are well-formed and carry the expected structure.

use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal (including the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values render as `null` — and debug builds *assert*: every
/// producer is expected to guard its divisions at the source (0-sample
/// snapshots report 0.0), so a non-finite value reaching the writer is a
/// bug that tests and CI should catch rather than serialise away.
pub fn number(v: f64) -> String {
    debug_assert!(
        v.is_finite(),
        "non-finite value {v} reached the JSON writer — guard the division at its source"
    );
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; `u64` covers every counter we export).
    Int(u64),
    /// A float (non-finite renders as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, JsonValue)>) -> Self {
        JsonValue::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Renders the tree compactly (no insignificant whitespace after
    /// separators beyond one space, stable key order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Looks up a key in an object (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items (`None` on non-arrays).
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents (`None` on non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value (`None` on non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Any numeric value as `f64` (`None` on non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(n) => Some(*n as f64),
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Num(v) => out.push_str(&number(*v)),
            JsonValue::Str(s) => out.push_str(&escape(s)),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&escape(k));
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses a JSON document into a [`JsonValue`]. Strict on structure
/// (trailing input, unterminated literals and deep nesting are errors)
/// and exact on integers: a non-negative integral token without `.`,
/// `e` or a minus sign becomes [`JsonValue::Int`], everything else
/// numeric becomes [`JsonValue::Num`].
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Containers deeper than this are rejected rather than risking a
/// stack overflow on adversarial input.
const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            // Surrogates (paired or lone) are replaced;
                            // our writer never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; `pos` only ever stops
                    // at char boundaries, so the suffix re-validates.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if integral && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::Int(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.0), "0");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite")]
    fn non_finite_numbers_assert_in_debug() {
        let _ = number(f64::NAN);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn non_finite_numbers_render_null_in_release() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn tree_rendering() {
        let v = JsonValue::obj([
            ("name", JsonValue::str("p50")),
            ("ms", JsonValue::Num(1.25)),
            ("hits", JsonValue::Int(3)),
            ("ok", JsonValue::Bool(true)),
            (
                "tags",
                JsonValue::Arr(vec![JsonValue::Null, JsonValue::str("a")]),
            ),
        ]);
        assert_eq!(
            v.render(),
            "{\"name\": \"p50\", \"ms\": 1.25, \"hits\": 3, \"ok\": true, \"tags\": [null, \"a\"]}"
        );
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = JsonValue::obj([
            ("name", JsonValue::str("a\"b\\c\nd")),
            ("ms", JsonValue::Num(1.25)),
            ("hits", JsonValue::Int(u64::MAX)),
            ("neg", JsonValue::Num(-3.5)),
            ("ok", JsonValue::Bool(false)),
            (
                "tags",
                JsonValue::Arr(vec![JsonValue::Null, JsonValue::str("é\u{1}")]),
            ),
            ("empty_obj", JsonValue::obj([])),
            ("empty_arr", JsonValue::Arr(vec![])),
        ]);
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parse_accepts_standard_json() {
        let v = parse(" {\"a\": [1, 2.5, -3, true, null], \"b\": {\"c\": \"\\u0041\"}} ").unwrap();
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_str),
            Some("A")
        );
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2], JsonValue::Num(-3.0));
        assert_eq!(arr[3], JsonValue::Bool(true));
        assert_eq!(arr[4], JsonValue::Null);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "nope",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bomb is an error, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }
}
