//! Common foundations shared by every `schema-graph-query` crate.
//!
//! This crate deliberately has no dependencies: it provides
//!
//! * compact `u32` newtype identifiers ([`id`]),
//! * an FxHash-style fast hasher and map/set aliases ([`hash`]),
//! * a string interner ([`intern`]),
//! * sorted-vector set algebra used by the engines ([`sorted`]),
//! * the shared error type ([`error`]),
//! * a minimal JSON writer used by every JSON-exporting component
//!   ([`json`]),
//! * lock-free memory accounting with per-query and global ceilings
//!   ([`governor`]),
//! * deterministic fault injection for robustness testing ([`fault`]).

#![warn(missing_docs)]

pub mod axes;
pub mod error;
pub mod fault;
pub mod governor;
pub mod hash;
pub mod id;
pub mod intern;
pub mod json;
pub mod rng;
pub mod sorted;

pub use axes::{Approach, Backend};
pub use error::{Result, SgqError};
pub use fault::{FaultConfig, FaultKind, FireReport};
pub use governor::{relation_bytes, QueryBudget, ResourceGovernor};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use id::{ColId, EdgeId, EdgeLabelId, KeyId, NodeId, NodeLabelId, RecVarId, VarId};
pub use intern::Interner;
pub use rng::Rng;
