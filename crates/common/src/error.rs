//! The shared error type.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, SgqError>;

/// Errors produced anywhere in the schema-graph-query stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgqError {
    /// A query/path-expression parse error, with position information.
    Parse {
        /// Human-readable description.
        message: String,
        /// Byte offset in the input where the error was detected.
        position: usize,
    },
    /// The schema itself is malformed (dangling ids, duplicate labels...).
    Schema(String),
    /// A database violates its schema (Def. 3 consistency).
    Consistency(String),
    /// A query is ill-formed (unknown label, unbound head variable...).
    Query(String),
    /// A query is not expressible in a restricted target language
    /// (e.g. UCQT features beyond Cypher's UC2RPQ fragment, §4).
    NotExpressible(String),
    /// An execution-time failure (e.g. fixpoint budget exhausted).
    Execution(String),
    /// A query materialised more rows (or node pairs, on the graph
    /// backend) than its configured budget allows.
    RowBudget {
        /// Rows materialised when the budget tripped.
        rows: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A query run exceeded the harness timeout (§5.1.5).
    Timeout {
        /// The configured limit, in milliseconds.
        limit_ms: u64,
    },
    /// The serving layer rejected the request at admission: the bounded
    /// job queue was full (back-pressure instead of unbounded latency).
    Busy {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// A query materialised more bytes of intermediate state than its
    /// memory budget allows (the [`crate::governor::ResourceGovernor`]
    /// aborts the query instead of letting the process OOM).
    BudgetExceeded {
        /// Bytes charged when the budget tripped.
        used: usize,
        /// The configured ceiling, in bytes.
        limit: usize,
    },
    /// An internal invariant failure (e.g. a worker panic caught by the
    /// serving layer), carrying the panic payload or diagnostic text.
    /// Never retryable: it signals a bug, not a transient condition.
    Internal(String),
    /// A deterministic injected fault from an armed
    /// [`crate::fault`] plan. Classified retryable: the chaos harness
    /// and the service's backoff helper treat it exactly like a
    /// transient infrastructure hiccup.
    Transient {
        /// The fault-point site that fired.
        site: &'static str,
    },
}

impl fmt::Display for SgqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgqError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            SgqError::Schema(m) => write!(f, "schema error: {m}"),
            SgqError::Consistency(m) => write!(f, "schema-database consistency violation: {m}"),
            SgqError::Query(m) => write!(f, "query error: {m}"),
            SgqError::NotExpressible(m) => write!(f, "not expressible in target language: {m}"),
            SgqError::Execution(m) => write!(f, "execution error: {m}"),
            SgqError::RowBudget { rows, budget } => {
                write!(f, "row budget exhausted ({rows} rows, budget {budget})")
            }
            SgqError::Timeout { limit_ms } => write!(f, "query timed out after {limit_ms} ms"),
            SgqError::Busy { capacity } => {
                write!(
                    f,
                    "service busy: admission queue full (capacity {capacity}); retry with backoff"
                )
            }
            SgqError::BudgetExceeded { used, limit } => {
                write!(
                    f,
                    "memory budget exceeded ({used} bytes materialised, limit {limit}); \
                     narrow the query or raise its memory budget"
                )
            }
            SgqError::Internal(m) => {
                write!(f, "internal error (this is a bug, not a caller error): {m}")
            }
            SgqError::Transient { site } => {
                write!(f, "transient fault injected at {site}; safe to retry")
            }
        }
    }
}

impl std::error::Error for SgqError {}

impl SgqError {
    /// Convenience constructor for parse errors.
    pub fn parse(message: impl Into<String>, position: usize) -> Self {
        SgqError::Parse {
            message: message.into(),
            position,
        }
    }

    /// Whether this error is a timeout (used by the feasibility harness).
    pub fn is_timeout(&self) -> bool {
        matches!(self, SgqError::Timeout { .. })
    }

    /// Whether this error is an admission-control rejection (the caller
    /// should back off and retry rather than treat the query as failed).
    pub fn is_busy(&self) -> bool {
        matches!(self, SgqError::Busy { .. })
    }

    /// Whether this error is a row/pair-budget breach (the harness
    /// treats it like a timeout: infeasible, not failed).
    pub fn is_row_budget(&self) -> bool {
        matches!(self, SgqError::RowBudget { .. })
    }

    /// Whether this error is a memory-budget breach (the governor
    /// aborted the query to protect the process).
    pub fn is_budget(&self) -> bool {
        matches!(self, SgqError::BudgetExceeded { .. })
    }

    /// Whether this error is an internal failure (a contained worker
    /// panic or broken invariant).
    pub fn is_internal(&self) -> bool {
        matches!(self, SgqError::Internal(_))
    }

    /// Whether this error is an injected transient fault.
    pub fn is_transient(&self) -> bool {
        matches!(self, SgqError::Transient { .. })
    }

    /// Whether a caller should retry the same request unchanged.
    ///
    /// The classification table:
    ///
    /// * **retryable** — [`SgqError::Busy`] (admission back-pressure:
    ///   the queue drains) and [`SgqError::Transient`] (injected
    ///   transients vanish on re-execution);
    /// * **not retryable** — everything else: parse/schema/query errors
    ///   are caller bugs, [`SgqError::Timeout`] / [`SgqError::RowBudget`]
    ///   / [`SgqError::BudgetExceeded`] would breach the same limit
    ///   again, and [`SgqError::Internal`] signals a server-side bug a
    ///   retry cannot fix.
    pub fn retryable(&self) -> bool {
        matches!(self, SgqError::Busy { .. } | SgqError::Transient { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SgqError::parse("unexpected token", 5);
        assert_eq!(e.to_string(), "parse error at byte 5: unexpected token");
        assert_eq!(
            SgqError::Timeout { limit_ms: 100 }.to_string(),
            "query timed out after 100 ms"
        );
    }

    #[test]
    fn timeout_predicate() {
        assert!(SgqError::Timeout { limit_ms: 1 }.is_timeout());
        assert!(!SgqError::Schema("x".into()).is_timeout());
    }

    #[test]
    fn row_budget_predicate_and_display() {
        let e = SgqError::RowBudget {
            rows: 1_000_001,
            budget: 1_000_000,
        };
        assert!(e.is_row_budget());
        assert!(!e.is_timeout());
        assert_eq!(
            e.to_string(),
            "row budget exhausted (1000001 rows, budget 1000000)"
        );
    }

    #[test]
    fn busy_predicate_and_display() {
        let e = SgqError::Busy { capacity: 8 };
        assert!(e.is_busy());
        assert!(!e.is_timeout());
        assert_eq!(
            e.to_string(),
            "service busy: admission queue full (capacity 8); retry with backoff"
        );
    }

    #[test]
    fn budget_exceeded_predicate_and_display() {
        let e = SgqError::BudgetExceeded {
            used: 4096,
            limit: 1024,
        };
        assert!(e.is_budget());
        assert!(!e.is_row_budget());
        assert!(!e.is_timeout());
        assert_eq!(
            e.to_string(),
            "memory budget exceeded (4096 bytes materialised, limit 1024); \
             narrow the query or raise its memory budget"
        );
    }

    #[test]
    fn internal_and_transient_display() {
        let e = SgqError::Internal("worker panicked: boom".into());
        assert!(e.is_internal());
        assert_eq!(
            e.to_string(),
            "internal error (this is a bug, not a caller error): worker panicked: boom"
        );
        let t = SgqError::Transient {
            site: "exec.hash_build",
        };
        assert!(t.is_transient());
        assert_eq!(
            t.to_string(),
            "transient fault injected at exec.hash_build; safe to retry"
        );
    }

    #[test]
    fn retryable_classification_table() {
        // Every variant, classified. Retryable: back-pressure and
        // injected transients only.
        let table: Vec<(SgqError, bool)> = vec![
            (SgqError::parse("x", 0), false),
            (SgqError::Schema("x".into()), false),
            (SgqError::Consistency("x".into()), false),
            (SgqError::Query("x".into()), false),
            (SgqError::NotExpressible("x".into()), false),
            (SgqError::Execution("x".into()), false),
            (SgqError::RowBudget { rows: 2, budget: 1 }, false),
            (SgqError::Timeout { limit_ms: 1 }, false),
            (SgqError::Busy { capacity: 1 }, true),
            (SgqError::BudgetExceeded { used: 2, limit: 1 }, false),
            (SgqError::Internal("x".into()), false),
            (SgqError::Transient { site: "s" }, true),
        ];
        for (err, want) in table {
            assert_eq!(err.retryable(), want, "misclassified: {err}");
        }
    }
}
