//! The shared error type.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, SgqError>;

/// Errors produced anywhere in the schema-graph-query stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgqError {
    /// A query/path-expression parse error, with position information.
    Parse {
        /// Human-readable description.
        message: String,
        /// Byte offset in the input where the error was detected.
        position: usize,
    },
    /// The schema itself is malformed (dangling ids, duplicate labels...).
    Schema(String),
    /// A database violates its schema (Def. 3 consistency).
    Consistency(String),
    /// A query is ill-formed (unknown label, unbound head variable...).
    Query(String),
    /// A query is not expressible in a restricted target language
    /// (e.g. UCQT features beyond Cypher's UC2RPQ fragment, §4).
    NotExpressible(String),
    /// An execution-time failure (e.g. fixpoint budget exhausted).
    Execution(String),
    /// A query materialised more rows (or node pairs, on the graph
    /// backend) than its configured budget allows.
    RowBudget {
        /// Rows materialised when the budget tripped.
        rows: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A query run exceeded the harness timeout (§5.1.5).
    Timeout {
        /// The configured limit, in milliseconds.
        limit_ms: u64,
    },
    /// The serving layer rejected the request at admission: the bounded
    /// job queue was full (back-pressure instead of unbounded latency).
    Busy {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
}

impl fmt::Display for SgqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgqError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            SgqError::Schema(m) => write!(f, "schema error: {m}"),
            SgqError::Consistency(m) => write!(f, "schema-database consistency violation: {m}"),
            SgqError::Query(m) => write!(f, "query error: {m}"),
            SgqError::NotExpressible(m) => write!(f, "not expressible in target language: {m}"),
            SgqError::Execution(m) => write!(f, "execution error: {m}"),
            SgqError::RowBudget { rows, budget } => {
                write!(f, "row budget exhausted ({rows} rows, budget {budget})")
            }
            SgqError::Timeout { limit_ms } => write!(f, "query timed out after {limit_ms} ms"),
            SgqError::Busy { capacity } => {
                write!(
                    f,
                    "service busy: admission queue full (capacity {capacity})"
                )
            }
        }
    }
}

impl std::error::Error for SgqError {}

impl SgqError {
    /// Convenience constructor for parse errors.
    pub fn parse(message: impl Into<String>, position: usize) -> Self {
        SgqError::Parse {
            message: message.into(),
            position,
        }
    }

    /// Whether this error is a timeout (used by the feasibility harness).
    pub fn is_timeout(&self) -> bool {
        matches!(self, SgqError::Timeout { .. })
    }

    /// Whether this error is an admission-control rejection (the caller
    /// should back off and retry rather than treat the query as failed).
    pub fn is_busy(&self) -> bool {
        matches!(self, SgqError::Busy { .. })
    }

    /// Whether this error is a row/pair-budget breach (the harness
    /// treats it like a timeout: infeasible, not failed).
    pub fn is_row_budget(&self) -> bool {
        matches!(self, SgqError::RowBudget { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SgqError::parse("unexpected token", 5);
        assert_eq!(e.to_string(), "parse error at byte 5: unexpected token");
        assert_eq!(
            SgqError::Timeout { limit_ms: 100 }.to_string(),
            "query timed out after 100 ms"
        );
    }

    #[test]
    fn timeout_predicate() {
        assert!(SgqError::Timeout { limit_ms: 1 }.is_timeout());
        assert!(!SgqError::Schema("x".into()).is_timeout());
    }

    #[test]
    fn row_budget_predicate_and_display() {
        let e = SgqError::RowBudget {
            rows: 1_000_001,
            budget: 1_000_000,
        };
        assert!(e.is_row_budget());
        assert!(!e.is_timeout());
        assert_eq!(
            e.to_string(),
            "row budget exhausted (1000001 rows, budget 1000000)"
        );
    }

    #[test]
    fn busy_predicate_and_display() {
        let e = SgqError::Busy { capacity: 8 };
        assert!(e.is_busy());
        assert!(!e.is_timeout());
        assert_eq!(
            e.to_string(),
            "service busy: admission queue full (capacity 8)"
        );
    }
}
