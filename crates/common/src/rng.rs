//! A small, seeded, dependency-free pseudo-random number generator.
//!
//! The dataset generators and the randomized property tests need
//! reproducible randomness, not cryptographic quality. This is the
//! SplitMix64 generator (Steele, Lea & Flood, "Fast splittable
//! pseudorandom number generators", OOPSLA 2014) — the same algorithm
//! `rand` uses to seed its generators — implemented locally so the
//! workspace stays dependency-free.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn gen_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    #[inline]
    pub fn gen_u32(&mut self) -> u32 {
        (self.gen_u64() >> 32) as u32
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        let span = range
            .end
            .checked_sub(range.start)
            .filter(|&s| s > 0)
            .expect("gen_range requires a non-empty range");
        // Modulo reduction: the bias is ~span/2^64, irrelevant for data
        // generation and tests.
        range.start + (self.gen_u64() % span as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(Rng::seed_from_u64(7).gen_u64(), c.gen_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(3..9);
            assert!((3..9).contains(&v));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = Rng::seed_from_u64(123);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
