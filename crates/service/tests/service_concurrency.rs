//! Concurrency acceptance tests for the query service.
//!
//! * Concurrent sessions over one shared `Arc<GraphDatabase>` produce
//!   exactly the rows sequential execution produces.
//! * A repeated statement is a plan-cache hit: the front-end does not
//!   run again and both executions share one `Arc<PreparedQuery>`.
//! * Admission control: with one worker and a one-slot queue, a burst
//!   of submissions is partially rejected with `Busy` — and everything
//!   that was admitted still completes correctly.

use std::sync::Arc;

use sgq_datasets::yago::{self, YagoConfig};
use sgq_service::{Backend, CacheOutcome, QueryOptions, Service, ServiceConfig, Session};

fn yago_service(workers: usize) -> (Service, Vec<String>) {
    let (schema, db) = yago::generate(YagoConfig::tiny());
    let queries = yago::queries(&schema)
        .expect("catalog parses")
        .iter()
        .map(|q| q.text.to_string())
        .collect();
    let service = Service::new(
        Arc::new(schema),
        Arc::new(db),
        ServiceConfig::with_workers(workers),
    );
    (service, queries)
}

fn run_all(session: &Session, queries: &[String], opts: &QueryOptions) -> Vec<Vec<Vec<u32>>> {
    queries
        .iter()
        .map(|q| {
            session
                .execute(q, opts)
                .expect("tiny dataset executes")
                .rows
        })
        .collect()
}

#[test]
fn concurrent_sessions_match_sequential_execution() {
    let (service, queries) = yago_service(4);
    for backend in [Backend::Graph, Backend::Relational] {
        let opts = QueryOptions {
            backend,
            use_cache: false, // every run exercises the full front-end
            ..Default::default()
        };
        // Sequential reference on one session.
        let expected = run_all(&service.session(), &queries, &opts);
        // Two concurrent sessions, each running the whole catalog.
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let session = service.session();
                    let queries = &queries;
                    s.spawn(move || run_all(&session, queries, &opts))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for rows in &results {
            assert_eq!(
                rows, &expected,
                "concurrent execution diverged on {backend}"
            );
        }
    }
    service.shutdown();
}

#[test]
fn repeated_query_is_a_cache_hit_without_reoptimisation() {
    let (service, queries) = yago_service(2);
    let session = service.session();
    let text = &queries[0];
    let opts = QueryOptions::default();

    let first = session.execute(text, &opts).unwrap();
    assert_eq!(first.stats.cache, CacheOutcome::Miss);

    let second = session.execute(text, &opts).unwrap();
    assert_eq!(second.stats.cache, CacheOutcome::Hit);
    assert_eq!(
        second.stats.prepare_micros, 0,
        "a hit must not re-run the front-end"
    );
    assert_eq!(second.rows, first.rows);

    // Both executions share the single frozen artifact.
    let (a, _) = session.prepare(text, &opts).unwrap();
    let (b, outcome) = session.prepare(text, &opts).unwrap();
    assert_eq!(outcome, CacheOutcome::Hit);
    assert!(Arc::ptr_eq(&a, &b), "one Arc<PreparedQuery> per statement");

    let m = service.metrics();
    assert!(m.cache.hits >= 2, "metrics: {m}");
    assert_eq!(m.cache.misses, 1, "metrics: {m}");
    service.shutdown();
}

#[test]
fn whitespace_variants_share_one_cache_entry() {
    let (service, _) = yago_service(1);
    let session = service.session();
    let opts = QueryOptions::default();
    let (a, o1) = session.prepare("owns/isLocatedIn+", &opts).unwrap();
    let (b, o2) = session.prepare("  owns /  isLocatedIn+ ", &opts).unwrap();
    assert_eq!((o1, o2), (CacheOutcome::Miss, CacheOutcome::Hit));
    assert!(
        Arc::ptr_eq(&a, &b),
        "canonical fingerprint unifies spelling"
    );
    service.shutdown();
}

#[test]
fn burst_over_capacity_is_rejected_busy_and_admitted_work_completes() {
    let (schema, db) = yago::generate(YagoConfig::tiny());
    let service = Service::new(
        Arc::new(schema),
        Arc::new(db),
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..Default::default()
        },
    );
    let session = service.session();
    let opts = QueryOptions {
        use_cache: false, // keep each job slow enough to pile up
        ..Default::default()
    };
    // Fire a burst without waiting: with one worker and a single queue
    // slot at most 2 jobs are in the system, so a 32-deep burst must see
    // rejections while everything admitted completes.
    let expected = session.execute("influences+", &opts).unwrap().rows;
    let mut pending = Vec::new();
    let mut busy = 0u32;
    for _ in 0..32 {
        match session.submit("influences+", &opts) {
            Ok(p) => pending.push(p),
            Err(e) if e.is_busy() => busy += 1,
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert!(busy > 0, "a 32-deep burst over a 1-slot queue must reject");
    assert!(!pending.is_empty(), "the first submission is admitted");
    for p in pending {
        assert_eq!(p.wait().unwrap().rows, expected);
    }
    let m = service.metrics();
    assert_eq!(m.rejected as u32, busy);
    assert_eq!(m.completed, 33 - u64::from(busy));
    service.shutdown();
}

#[test]
fn graceful_shutdown_completes_admitted_queries() {
    let (service, queries) = yago_service(2);
    let session = service.session();
    let opts = QueryOptions::default();
    let pending: Vec<_> = queries
        .iter()
        .take(8)
        .filter_map(|q| session.submit(q, &opts).ok())
        .collect();
    service.shutdown();
    for p in pending {
        assert!(p.wait().is_ok(), "admitted queries complete on shutdown");
    }
}
