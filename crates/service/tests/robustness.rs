//! Robustness acceptance tests for the query service.
//!
//! * Memory budgets: a query exceeding its budget aborts with
//!   `BudgetExceeded` while a concurrent in-budget query on the same
//!   service completes, and the governor balances back to zero.
//! * Deadlines: expiry mid-fixpoint and mid-morsel under every physical
//!   storage layout yields a prompt timeout error, a zero governor
//!   balance, and a pool that accepts the next query.
//! * Panic containment: an injected worker panic surfaces to the caller
//!   as `SgqError::Internal`, is counted in metrics, and leaves the
//!   worker healthy.
//!
//! Fault-injection state is process-global, so every test that arms a
//! plan must hold `FAULT_LOCK`. This binary is the only place in the
//! service crate that arms faults.

use std::sync::{Arc, Mutex};

use sgq_common::fault::{self, FaultConfig, FaultKind};
use sgq_datasets::yago::{self, YagoConfig};
use sgq_ra::LayoutKind;
use sgq_service::{QueryOptions, Service, ServiceConfig};

/// Serialises fault-arming tests (the plan is process-global).
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn service_with(config: ServiceConfig) -> Service {
    let (schema, db) = yago::generate(YagoConfig::tiny());
    Service::new(Arc::new(schema), Arc::new(db), config)
}

/// The directed acceptance test: one query runs under a budget far too
/// small for its intermediate state and must abort with
/// `BudgetExceeded`, while an in-budget query racing it on the same
/// two-worker service completes with the right rows.
#[test]
fn over_budget_query_aborts_while_concurrent_in_budget_query_completes() {
    let service = service_with(ServiceConfig::with_workers(2));
    let session = service.session();
    let opts = QueryOptions::default();

    // Fault-free reference for the in-budget query.
    let expected = session.execute("owns/isLocatedIn+", &opts).unwrap();
    assert!(
        expected.stats.rows_materialized > 0,
        "the reference query must materialise state for the budget to bite"
    );

    let tight = QueryOptions {
        max_memory: Some(16), // 16 bytes: one 4-column row already breaches
        use_cache: false,
        ..Default::default()
    };
    let roomy = QueryOptions {
        use_cache: false,
        ..Default::default()
    };
    let starved = session.submit("owns/isLocatedIn+", &tight).unwrap();
    let healthy = session.submit("influences+", &roomy).unwrap();

    let err = starved.wait().unwrap_err();
    assert!(err.is_budget(), "expected BudgetExceeded, got: {err}");
    let msg = err.to_string();
    assert!(msg.contains("memory budget"), "unactionable message: {msg}");

    let ok = healthy.wait().expect("the in-budget query must complete");
    let reference = session.execute("influences+", &opts).unwrap();
    assert_eq!(ok.rows, reference.rows);

    // The breached charge was released with the query: nothing leaks.
    assert_eq!(service.governor().used(), 0);
    assert_eq!(service.governor().active_queries(), 0);
    let m = service.metrics();
    assert!(m.errors_memory_budget >= 1, "metrics: {m}");

    // And the service still serves.
    assert_eq!(session.execute("influences+", &opts).unwrap().rows, ok.rows);
    service.shutdown();
}

#[test]
fn per_call_override_can_lift_the_configured_budget() {
    let service = service_with(ServiceConfig {
        workers: 1,
        query_memory_limit: 16, // default budget: everything breaches
        ..Default::default()
    });
    let session = service.session();
    let opts = QueryOptions {
        use_cache: false,
        ..Default::default()
    };
    let err = session.execute("owns/isLocatedIn+", &opts).unwrap_err();
    assert!(err.is_budget(), "configured default must apply: {err}");

    // `Some(0)` = unlimited for this call, overriding the config.
    let lifted = QueryOptions {
        max_memory: Some(0),
        use_cache: false,
        ..Default::default()
    };
    session
        .execute("owns/isLocatedIn+", &lifted)
        .expect("per-call override lifts the default budget");
    assert_eq!(service.governor().used(), 0);
    service.shutdown();
}

/// Drives one query through a decreasing-timeout loop under the given
/// config: starting from a deadline the warm query comfortably meets,
/// halve until expiry strikes mid-execution (timeout 0 deterministically
/// expires, so the loop always terminates). After every timeout the
/// governor must read zero and the pool must accept the next query.
fn assert_deadline_expiry_is_graceful(config: ServiceConfig, query: &str, opts: &QueryOptions) {
    let service = service_with(config);
    let session = service.session();

    // Warm pass (also fills the plan cache): the reference rows.
    let reference = session.execute(query, opts).expect("warm pass");
    let warm_micros = reference.stats.total_micros.max(1);

    let mut timeout_ms = (warm_micros / 1000).max(2);
    let mut saw_timeout = false;
    loop {
        let attempt = QueryOptions {
            timeout_ms: Some(timeout_ms),
            ..*opts
        };
        match session.execute(query, &attempt) {
            Ok(resp) => assert_eq!(resp.rows, reference.rows),
            Err(e) => {
                assert!(e.is_timeout(), "deadline expiry must classify: {e}");
                saw_timeout = true;
                // Partial state of the cancelled query is fully released.
                assert_eq!(service.governor().used(), 0, "governor leaked");
                assert_eq!(service.governor().active_queries(), 0);
                // The worker survived: the next query is admitted and runs.
                let next = session.execute(query, opts).expect("pool serves on");
                assert_eq!(next.rows, reference.rows);
            }
        }
        if timeout_ms == 0 {
            break;
        }
        timeout_ms /= 2;
    }
    assert!(saw_timeout, "timeout 0 must expire");
    service.shutdown();
}

#[test]
fn deadline_expiry_mid_fixpoint_is_graceful_under_every_layout() {
    for layout in LayoutKind::ALL {
        let config = ServiceConfig {
            workers: 1,
            layout: Some(layout),
            ..Default::default()
        };
        // `influences+` is a transitive closure: rounds of a fixpoint.
        assert_deadline_expiry_is_graceful(config, "influences+", &QueryOptions::default());
    }
}

#[test]
fn deadline_expiry_mid_morsel_is_graceful_under_every_layout() {
    for layout in LayoutKind::ALL {
        let config = ServiceConfig {
            workers: 1,
            layout: Some(layout),
            // Force every probe to split into 2-row morsels at DOP 4 so
            // the deadline lands inside a parallel section.
            default_dop: 4,
            max_dop: 4,
            parallel_row_threshold: 1,
            morsel_rows: 2,
            ..Default::default()
        };
        let opts = QueryOptions {
            dop: Some(4),
            ..Default::default()
        };
        assert_deadline_expiry_is_graceful(config, "owns/isLocatedIn+", &opts);
    }
}

#[test]
fn injected_worker_panic_is_contained_as_internal_error() {
    let _l = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let service = service_with(ServiceConfig::with_workers(1));
    let session = service.session();
    let opts = QueryOptions::default();
    let reference = session.execute("influences+", &opts).unwrap();

    {
        let _armed = fault::armed_scope(FaultConfig {
            seed: 1,
            probability: 1.0,
            site: Some("service.dispatch"),
            kind: FaultKind::Panic,
        });
        let err = session.execute("influences+", &opts).unwrap_err();
        assert!(err.is_internal(), "panic must surface as Internal: {err}");
        let msg = err.to_string();
        assert!(msg.contains("worker panicked"), "message: {msg}");
        assert!(msg.contains("service.dispatch"), "payload preserved: {msg}");
    }

    let m = service.metrics();
    assert!(m.worker_panics >= 1, "containment is counted: {m}");
    assert_eq!(service.governor().used(), 0);

    // The same worker serves the next query, disarmed.
    let after = session.execute("influences+", &opts).unwrap();
    assert_eq!(after.rows, reference.rows);
    service.shutdown();
}

#[test]
fn injected_transients_are_classified_retryable_and_retried_away() {
    let _l = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let service = service_with(ServiceConfig::with_workers(1));
    let session = service.session();
    let opts = QueryOptions {
        use_cache: false, // visit every fault site on every attempt
        ..Default::default()
    };
    let reference = session.execute("owns/isLocatedIn+", &opts).unwrap();

    let _armed = fault::armed_scope(FaultConfig::errors(3, 0.2));
    let policy = sgq_service::RetryPolicy::unbounded(3);
    let (result, retries) =
        sgq_service::retry_with_backoff(policy, || session.execute("owns/isLocatedIn+", &opts));
    assert_eq!(result.unwrap().rows, reference.rows);
    // p=0.2 across ~10 sites per attempt: some attempt must have failed.
    assert!(retries > 0, "no transient fired at p=0.2");
    let m = service.metrics();
    assert!(m.errors_transient >= 1, "metrics classify transients: {m}");
    assert_eq!(service.governor().used(), 0);
    service.shutdown();
}
