//! Bounded retry with jittered exponential backoff.
//!
//! The companion to [`sgq_common::SgqError::retryable`]: admission
//! rejections
//! (`Busy`) and injected transients vanish on re-execution, so callers
//! should re-submit — but *not* in a hot spin, which burns a core to
//! hammer a queue that drains at worker speed. [`retry_with_backoff`]
//! sleeps `min(cap, base × 2ⁿ)` scaled by a seeded jitter factor in
//! `[0.5, 1.0]` between attempts, so colliding clients decorrelate
//! instead of thundering back in lockstep.

use std::time::Duration;

use sgq_common::{Result, Rng};

#[cfg(test)]
use sgq_common::SgqError;

/// How a caller retries retryable errors: attempt bound, backoff base
/// and cap, and the jitter seed (deterministic per caller).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts including the first (0 = unbounded: keep
    /// retrying until a non-retryable outcome).
    pub max_attempts: usize,
    /// First backoff sleep; doubles each retry.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// A sensible default for in-process resubmission: 8 attempts,
    /// 100 µs base, 10 ms cap.
    pub fn new(seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_micros(100),
            cap: Duration::from_millis(10),
            seed,
        }
    }

    /// An unbounded policy for closed-loop clients that must eventually
    /// admit every request (the harness's serve/chaos loops).
    pub fn unbounded(seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 0,
            ..Self::new(seed)
        }
    }
}

/// Runs `op` until it succeeds, fails with a non-retryable error, or
/// exhausts the policy's attempts. Returns the final outcome and how
/// many retries (re-invocations after the first attempt) were spent —
/// the harness reports this in experiment JSON.
pub fn retry_with_backoff<T>(
    policy: RetryPolicy,
    mut op: impl FnMut() -> Result<T>,
) -> (Result<T>, u64) {
    let mut rng = Rng::seed_from_u64(policy.seed);
    let mut retries = 0u64;
    loop {
        match op() {
            Err(e) if e.retryable() => {
                if policy.max_attempts > 0 && (retries + 1) as usize >= policy.max_attempts {
                    return (Err(e), retries);
                }
                let exp = retries.min(20); // 2^20 × base caps the shift well past any real cap
                let backoff = policy
                    .base
                    .saturating_mul(1u32 << exp.min(31) as u32)
                    .min(policy.cap);
                let jitter = 0.5 + 0.5 * rng.gen_f64();
                std::thread::sleep(backoff.mul_f64(jitter));
                retries += 1;
            }
            outcome => return (outcome, retries),
        }
    }
}

/// Convenience wrapper discarding the retry count.
pub fn retrying<T>(policy: RetryPolicy, op: impl FnMut() -> Result<T>) -> Result<T> {
    retry_with_backoff(policy, op).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn success_on_first_attempt_spends_no_retries() {
        let (out, retries) = retry_with_backoff(RetryPolicy::new(1), || Ok(42));
        assert_eq!(out.unwrap(), 42);
        assert_eq!(retries, 0);
    }

    #[test]
    fn retryable_errors_are_retried_until_success() {
        let mut left = 3;
        let (out, retries) = retry_with_backoff(RetryPolicy::new(2), || {
            if left > 0 {
                left -= 1;
                Err(SgqError::Busy { capacity: 1 })
            } else {
                Ok("done")
            }
        });
        assert_eq!(out.unwrap(), "done");
        assert_eq!(retries, 3);
    }

    #[test]
    fn non_retryable_errors_return_immediately() {
        let mut calls = 0;
        let (out, retries) = retry_with_backoff(RetryPolicy::new(3), || -> Result<()> {
            calls += 1;
            Err(SgqError::Timeout { limit_ms: 1 })
        });
        assert!(out.unwrap_err().is_timeout());
        assert_eq!(retries, 0);
        assert_eq!(calls, 1, "a timeout is not retried");
    }

    #[test]
    fn attempt_bound_is_honoured() {
        let mut calls = 0;
        let policy = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_micros(1),
            cap: Duration::from_micros(10),
            seed: 9,
        };
        let (out, retries) = retry_with_backoff(policy, || -> Result<()> {
            calls += 1;
            Err(SgqError::Transient { site: "t" })
        });
        assert!(out.unwrap_err().is_transient());
        assert_eq!(calls, 4, "max_attempts counts the first attempt");
        assert_eq!(retries, 3);
    }

    #[test]
    fn backoff_actually_sleeps_and_respects_the_cap() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 5,
        };
        let start = Instant::now();
        let (out, retries) = retry_with_backoff(policy, || -> Result<()> {
            Err(SgqError::Busy { capacity: 1 })
        });
        let elapsed = start.elapsed();
        assert!(out.is_err());
        assert_eq!(retries, 4);
        // 4 sleeps, each at least base/2 (jitter floor 0.5): >= 2 ms.
        assert!(elapsed >= Duration::from_millis(2), "slept {elapsed:?}");
        // And each at most cap: well under a second in total.
        assert!(elapsed < Duration::from_millis(500), "slept {elapsed:?}");
    }
}
