//! A concurrent query service over the schema-graph-query engines.
//!
//! The paper's pipeline — parse → schema-based rewrite (§3) → optimise →
//! plan (§4) — is pure front-end work; this crate amortises it behind
//! prepared statements and serves many concurrent clients from one
//! loaded database, the way production graph optimisers (e.g. GOpt)
//! serve prepared plans:
//!
//! * [`prepared`] — [`PreparedQuery`]: the front-end runs exactly once
//!   and freezes an immutable, `Send + Sync` artifact (physical plan +
//!   column metadata) shared via `Arc`,
//! * [`cache`] — [`PlanCache`]: a sharded LRU keyed by (canonical query
//!   text, schema fingerprint/version, backend + options), with
//!   hit/miss/eviction counters and whole-cache invalidation on schema
//!   version bumps,
//! * [`pool`] — [`WorkerPool`]: a `std::thread` pool over a bounded job
//!   queue; a full queue rejects at admission
//!   ([`sgq_common::SgqError::Busy`]) instead of growing latency, and
//!   shutdown drains gracefully,
//! * [`service`] — [`Service`] / [`Session`]: submit a query string or
//!   parsed expression with per-call options (backend, timeout, row
//!   budget, cache bypass), get rows plus execution stats,
//! * [`metrics`] — [`MetricsRegistry`]: QPS, p50/p95/p99 latency, cache
//!   hit rate, per-error-kind counts and per-operator-kind profiles,
//!   exported as text or JSON.
//!
//! Observability rides on [`sgq_obs`]: a per-service
//! [`Tracer`](sgq_obs::Tracer) samples query lifecycles into phase +
//! operator spans ([`ServiceConfig::tracing`],
//! [`Session::recent_traces`], Chrome-trace export via
//! [`sgq_obs::chrome_traces_json`]), a
//! [`SlowQueryLog`](sgq_obs::SlowQueryLog) captures over-threshold
//! queries ([`Session::drain_slow_queries`]), and
//! [`QueryOptions::analyze`] returns the structured `EXPLAIN ANALYZE` of
//! the production execution.
//!
//! ```
//! use std::sync::Arc;
//! use sgq_service::{QueryOptions, Service, ServiceConfig};
//!
//! let schema = Arc::new(sgq_graph::schema::fig1_yago_schema());
//! let db = Arc::new(sgq_graph::database::fig2_yago_database());
//! let service = Service::new(schema, db, ServiceConfig::with_workers(2));
//!
//! let session = service.session();
//! let resp = session
//!     .execute("livesIn/isLocatedIn+", &QueryOptions::default())
//!     .unwrap();
//! assert!(!resp.rows.is_empty());
//! // The second execution of the same statement is a plan-cache hit.
//! let again = session
//!     .execute("livesIn/isLocatedIn+", &QueryOptions::default())
//!     .unwrap();
//! assert_eq!(again.rows, resp.rows);
//! assert!(service.metrics().cache.hits >= 1);
//! service.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod pool;
pub mod prepared;
pub mod retry;
pub mod service;

pub use cache::{schema_fingerprint, CacheKey, CacheOutcome, CacheStats, PlanCache};
pub use metrics::{LatencyHistogram, MetricsRegistry, MetricsSnapshot};
pub use pool::WorkerPool;
pub use prepared::{prepare, Approach, Backend, PreparedBody, PreparedQuery};
pub use retry::{retry_with_backoff, retrying, RetryPolicy};
pub use service::{
    PendingQuery, QueryOptions, QueryResponse, QueryStats, Service, ServiceConfig, Session,
};

// The serving contract: everything shared across sessions and workers
// must be `Send + Sync`. Compile-time assertions (the upstream halves of
// this audit live in `sgq_graph` and `sgq_ra`).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedQuery>();
    assert_send_sync::<PlanCache>();
    assert_send_sync::<WorkerPool>();
    assert_send_sync::<MetricsRegistry>();
    assert_send_sync::<Service>();
    assert_send_sync::<Session>();
    assert_send_sync::<sgq_obs::Tracer>();
    assert_send_sync::<sgq_obs::SlowQueryLog>();
    assert_send_sync::<sgq_obs::QueryTrace>();
};
