//! The sharded plan cache.
//!
//! Prepared statements ([`crate::prepared::PreparedQuery`]) are keyed by
//! the triple the paper's front-end is deterministic in: the *canonical
//! query text* (parse-normalised rendering, so formatting differences
//! share an entry), a *schema fingerprint + version* (a schema change
//! must never serve a stale plan — bumping the service's schema version
//! invalidates every entry), and the *backend/options signature*
//! (backend, approach, storage layout, rewrite switches — each
//! combination plans differently; in particular a plan lowered against
//! one physical layout may reference scan operators another layout
//! cannot serve).
//!
//! The cache is split into shards, each an independently locked LRU, so
//! concurrent sessions hitting different statements rarely contend on
//! the same mutex. Hits, misses, evictions and invalidations are
//! counted for the metrics registry.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use sgq_common::FxHasher;
use sgq_core::pipeline::RewriteOptions;
use sgq_graph::GraphSchema;
use sgq_ra::LayoutKind;

use crate::prepared::{Approach, Backend, PreparedQuery};

/// How a query's prepared statement was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the plan cache: the front-end did not run.
    Hit,
    /// Prepared now and inserted into the cache.
    Miss,
    /// Prepared now with caching disabled for the call.
    Bypass,
    /// A cached plan was resident but stale — its estimated root
    /// cardinality diverged from the feedback memo's observation by the
    /// configured factor — so the front-end re-ran and the fresh plan
    /// replaced the entry.
    Replan,
}

impl std::fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheOutcome::Hit => write!(f, "hit"),
            CacheOutcome::Miss => write!(f, "miss"),
            CacheOutcome::Bypass => write!(f, "bypass"),
            CacheOutcome::Replan => write!(f, "replan"),
        }
    }
}

/// A fully-resolved cache key. Equality compares the key text (the hash
/// only routes to a shard and pre-filters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    hash: u64,
    text: String,
}

impl CacheKey {
    /// Builds the key from its components.
    ///
    /// `schema_fingerprint` is the structural hash of the schema
    /// ([`schema_fingerprint`]); `schema_version` is the service's
    /// monotone version counter, so an in-place schema change (same
    /// structure, new data semantics) can still invalidate. `layout` is
    /// the store's physical layout: plans are lowered against one
    /// layout's capabilities, so a layout switch must miss.
    pub fn new(
        canonical_query: &str,
        schema_fingerprint: u64,
        schema_version: u64,
        backend: Backend,
        approach: Approach,
        layout: LayoutKind,
        rewrite: &RewriteOptions,
    ) -> Self {
        let text = format!(
            "{canonical_query}\u{1f}{schema_fingerprint:016x}\u{1f}{schema_version}\u{1f}{backend}\u{1f}{approach}\u{1f}{layout}\u{1f}{}",
            rewrite_signature(rewrite)
        );
        let mut h = FxHasher::default();
        text.hash(&mut h);
        CacheKey {
            hash: h.finish(),
            text,
        }
    }
}

/// The options that change what `prepare` produces, folded into the key.
fn rewrite_signature(o: &RewriteOptions) -> String {
    format!(
        "s{}t{}a{}r{:?}T{}P{}D{}",
        o.simplify as u8,
        o.tc_elimination as u8,
        o.annotations as u8,
        o.redundancy,
        o.max_triples,
        o.max_paths,
        o.max_disjuncts
    )
}

/// A structural fingerprint of a schema: label vocabularies plus the
/// basic-triple set. Two schemas with the same fingerprint produce the
/// same rewrites and plans.
pub fn schema_fingerprint(schema: &GraphSchema) -> u64 {
    let mut h = FxHasher::default();
    for l in schema.node_labels() {
        schema.node_label_name(l).hash(&mut h);
    }
    0xffu8.hash(&mut h);
    for le in schema.edge_labels() {
        schema.edge_label_name(le).hash(&mut h);
    }
    0xffu8.hash(&mut h);
    for t in schema.triples() {
        t.src.raw().hash(&mut h);
        t.label.raw().hash(&mut h);
        t.tgt.raw().hash(&mut h);
    }
    h.finish()
}

struct Entry {
    key: CacheKey,
    value: Arc<PreparedQuery>,
    last_used: u64,
}

/// One shard: an independently locked LRU over a handful of entries.
/// Lookups and the eviction scan are linear — per-shard capacity is
/// small by construction (total capacity / shard count), so a scan beats
/// the constant factors of a linked LRU at this size.
struct Shard {
    entries: Vec<Entry>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, idx: usize) -> Arc<PreparedQuery> {
        self.tick += 1;
        self.entries[idx].last_used = self.tick;
        Arc::clone(&self.entries[idx].value)
    }

    fn find(&self, key: &CacheKey) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.key.hash == key.hash && e.key.text == key.text)
    }
}

/// A sharded LRU of prepared statements.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("len", &self.len())
            .finish()
    }
}

/// Counter snapshot of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran the front-end.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
    /// Entries dropped by schema-version invalidation.
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate over all cache-consulting lookups (0.0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl PlanCache {
    /// A cache holding up to `capacity` statements across `shards`
    /// independently locked shards (both clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, capacity.max(1));
        let per_shard_capacity = capacity.max(1).div_ceil(shards);
        PlanCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: Vec::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> MutexGuard<'_, Shard> {
        let idx = (key.hash as usize) % self.shards.len();
        self.shards[idx].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up `key`, counting a hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<PreparedQuery>> {
        let mut shard = self.shard(key);
        match shard.find(key) {
            Some(idx) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(shard.touch(idx))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `value` under `key`, returning the resident entry. If a
    /// concurrent prepare won the race, the existing entry wins (so every
    /// caller shares one `Arc` per statement) and `value` is dropped.
    pub fn insert(&self, key: CacheKey, value: Arc<PreparedQuery>) -> Arc<PreparedQuery> {
        let mut shard = self.shard(&key);
        if let Some(idx) = shard.find(&key) {
            return shard.touch(idx);
        }
        if shard.entries.len() >= self.per_shard_capacity {
            // Evict the least-recently-used entry of this shard.
            let lru = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("capacity >= 1 implies a resident entry");
            shard.entries.swap_remove(lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.tick += 1;
        let tick = shard.tick;
        shard.entries.push(Entry {
            key,
            value: Arc::clone(&value),
            last_used: tick,
        });
        value
    }

    /// Serves `key` from the cache, or prepares it with `f` (run
    /// *outside* the shard lock, so a slow prepare never blocks hits on
    /// sibling statements) and inserts the result.
    pub fn get_or_prepare(
        &self,
        key: CacheKey,
        f: impl FnOnce() -> sgq_common::Result<PreparedQuery>,
    ) -> sgq_common::Result<(Arc<PreparedQuery>, CacheOutcome)> {
        if let Some(hit) = self.get(&key) {
            return Ok((hit, CacheOutcome::Hit));
        }
        let prepared = Arc::new(f()?);
        Ok((self.insert(key, prepared), CacheOutcome::Miss))
    }

    /// Drops the entry under `key` (stale-plan replacement), returning
    /// whether one was resident. Not counted as an invalidation — the
    /// caller records the replan in the metrics registry.
    pub fn remove(&self, key: &CacheKey) -> bool {
        let mut shard = self.shard(key);
        match shard.find(key) {
            Some(idx) => {
                shard.entries.swap_remove(idx);
                true
            }
            None => false,
        }
    }

    /// Drops every entry (schema version bump), counting invalidations.
    pub fn invalidate_all(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap_or_else(|e| e.into_inner());
            self.invalidations
                .fetch_add(s.entries.len() as u64, Ordering::Relaxed);
            s.entries.clear();
        }
    }

    /// Resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::database::fig2_yago_database;
    use sgq_graph::schema::fig1_yago_schema;
    use sgq_ra::RelStore;

    fn prepared_for(text: &str) -> PreparedQuery {
        let schema = fig1_yago_schema();
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let expr = parse_path(text, &schema).unwrap();
        crate::prepared::prepare(
            &schema,
            &store,
            &expr,
            Backend::Relational,
            Approach::Baseline,
            RewriteOptions::default(),
        )
        .unwrap()
    }

    fn key(text: &str, version: u64) -> CacheKey {
        CacheKey::new(
            text,
            0xabcd,
            version,
            Backend::Relational,
            Approach::Baseline,
            LayoutKind::PerLabel,
            &RewriteOptions::default(),
        )
    }

    #[test]
    fn empty_cache_hit_rate_is_finite_zero() {
        // `hit_rate` divides hits by lookups: with no lookups it must
        // report 0.0, not NaN — the snapshot JSON feeds the shared writer,
        // which debug-asserts on non-finite numbers.
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        let cache = PlanCache::new(8, 2);
        let rate = cache.stats().hit_rate();
        assert!(rate.is_finite());
        assert_eq!(rate, 0.0);
        assert_eq!(sgq_common::json::number(rate), "0");
    }

    #[test]
    fn hit_after_insert_shares_the_arc() {
        let cache = PlanCache::new(8, 2);
        let k = key("owns", 0);
        assert!(cache.get(&k).is_none());
        let v = cache.insert(k.clone(), Arc::new(prepared_for("owns")));
        let hit = cache.get(&k).expect("resident");
        assert!(Arc::ptr_eq(&v, &hit));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn distinct_options_are_distinct_keys() {
        let base = key("owns", 0);
        let other_backend = CacheKey::new(
            "owns",
            0xabcd,
            0,
            Backend::Graph,
            Approach::Baseline,
            LayoutKind::PerLabel,
            &RewriteOptions::default(),
        );
        let other_version = key("owns", 1);
        assert_ne!(base, other_backend);
        assert_ne!(base, other_version);
    }

    #[test]
    fn distinct_layouts_are_distinct_keys() {
        // A plan lowered against one layout may reference scan operators
        // another layout cannot serve (masked multi scans, denormalised
        // slices), so every layout must key its own cache entry — a
        // layout switch can never be served a stale plan.
        let cache = PlanCache::new(8, 2);
        let keys: Vec<CacheKey> = LayoutKind::ALL
            .iter()
            .map(|&l| {
                CacheKey::new(
                    "owns",
                    0xabcd,
                    0,
                    Backend::Relational,
                    Approach::Baseline,
                    l,
                    &RewriteOptions::default(),
                )
            })
            .collect();
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        let p = Arc::new(prepared_for("owns"));
        cache.insert(keys[0].clone(), Arc::clone(&p));
        assert!(cache.get(&keys[1]).is_none(), "polymorphic must miss");
        assert!(cache.get(&keys[2]).is_none(), "denormalized must miss");
        assert!(cache.get(&keys[0]).is_some());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = PlanCache::new(2, 1);
        let p = Arc::new(prepared_for("owns"));
        cache.insert(key("a", 0), Arc::clone(&p));
        cache.insert(key("b", 0), Arc::clone(&p));
        // Touch `a` so `b` becomes the LRU entry.
        assert!(cache.get(&key("a", 0)).is_some());
        cache.insert(key("c", 0), Arc::clone(&p));
        assert!(cache.get(&key("a", 0)).is_some(), "a was kept");
        assert!(cache.get(&key("b", 0)).is_none(), "b was evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn invalidate_all_clears_and_counts() {
        // Per-shard capacity 8: five entries cannot evict even if every
        // key hashes into one shard.
        let cache = PlanCache::new(32, 4);
        let p = Arc::new(prepared_for("owns"));
        for i in 0..5 {
            cache.insert(key(&format!("q{i}"), 0), Arc::clone(&p));
        }
        assert_eq!(cache.len(), 5);
        cache.invalidate_all();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 5);
    }

    #[test]
    fn get_or_prepare_runs_the_frontend_once() {
        let cache = PlanCache::new(8, 2);
        let k = key("owns", 0);
        let mut calls = 0;
        let (first, outcome) = cache
            .get_or_prepare(k.clone(), || {
                calls += 1;
                Ok(prepared_for("owns"))
            })
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let (second, outcome) = cache
            .get_or_prepare(k, || {
                calls += 1;
                Ok(prepared_for("owns"))
            })
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(calls, 1, "the second lookup must not re-prepare");
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn hit_rate() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn schema_fingerprint_is_structural() {
        let a = schema_fingerprint(&fig1_yago_schema());
        let b = schema_fingerprint(&fig1_yago_schema());
        assert_eq!(a, b, "deterministic");
        let mut builder = sgq_graph::GraphSchema::builder();
        builder.node("ONLY", &[]);
        let other = builder.build().unwrap();
        assert_ne!(a, schema_fingerprint(&other));
    }
}
