//! Prepared queries: the front-end runs exactly once.
//!
//! [`prepare`] pushes a path query through the full pipeline — schema
//! rewrite (§3, optional), UCQT→RA translation, logical optimisation
//! (§4) and physical planning — and freezes the result as an immutable
//! [`PreparedQuery`]: the physical plan plus resolved column metadata.
//! The artifact is `Send + Sync` (asserted at compile time in
//! `lib.rs`), so one `Arc<PreparedQuery>` is shared by every session and
//! worker that executes the same statement; execution never re-enters
//! the front-end.

use std::time::Instant;

use sgq_algebra::ast::PathExpr;
use sgq_algebra::display::path_to_string;
use sgq_common::Result;
use sgq_core::pipeline::{rewrite_path, RewriteOptions, RewriteOutcome};
use sgq_graph::GraphSchema;
use sgq_query::cqt::Ucqt;
use sgq_ra::{PhysPlan, RelStore};
use sgq_translate::ucqt2rra::{ucqt_to_term, NameGen};

// The execution axes are workspace vocabulary (`sgq_common::axes`):
// the plan-cache key signature and the harness's experiment records
// must agree on the variants and their rendered names.
pub use sgq_common::{Approach, Backend};

/// The executable body of a prepared query.
#[derive(Debug)]
pub enum PreparedBody {
    /// The schema proves the query empty (rewrite outcome ∅): execution
    /// returns no rows without touching either engine.
    Empty,
    /// Graph backend: the (possibly rewritten) UCQT, evaluated directly
    /// over CSR adjacency.
    Graph(Ucqt),
    /// Relational backends: the frozen physical plan.
    Relational(PhysPlan),
}

/// An immutable, shareable prepared statement: the product of running
/// parse → rewrite → translate → optimise → plan exactly once.
#[derive(Debug)]
pub struct PreparedQuery {
    canonical: String,
    backend: Backend,
    approach: Approach,
    columns: Vec<String>,
    body: PreparedBody,
    prepare_micros: u64,
}

impl PreparedQuery {
    /// The canonical text of the source path expression (parse-normalised,
    /// also the cache-key component).
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The backend this statement was planned for.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Baseline or schema-rewritten.
    pub fn approach(&self) -> Approach {
        self.approach
    }

    /// Resolved output column names, in result order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The executable body.
    pub fn body(&self) -> &PreparedBody {
        &self.body
    }

    /// Whether the schema proved the query empty at prepare time.
    pub fn is_provably_empty(&self) -> bool {
        matches!(self.body, PreparedBody::Empty)
    }

    /// The frozen physical plan (relational backends only).
    pub fn plan(&self) -> Option<&PhysPlan> {
        match &self.body {
            PreparedBody::Relational(plan) => Some(plan),
            _ => None,
        }
    }

    /// Wall-clock time the front-end spent preparing, in microseconds.
    pub fn prepare_micros(&self) -> u64 {
        self.prepare_micros
    }
}

/// The canonical text of a path expression: parse-normalised rendering,
/// so `a/b+` and ` a / b+ ` fingerprint identically.
pub fn canonical_text(expr: &PathExpr, schema: &GraphSchema) -> String {
    path_to_string(expr, schema)
}

/// Runs the full front-end once and freezes the artifact.
///
/// For [`Approach::Schema`] the paper's rewrite runs first; an `∅`
/// outcome (the schema proves the query unsatisfiable) yields a
/// [`PreparedBody::Empty`] statement that executes for free. Relational
/// backends then translate to RA, optionally optimise, and lower to a
/// physical plan against `store`.
pub fn prepare(
    schema: &GraphSchema,
    store: &RelStore,
    expr: &PathExpr,
    backend: Backend,
    approach: Approach,
    rewrite: RewriteOptions,
) -> Result<PreparedQuery> {
    let start = Instant::now();
    let canonical = canonical_text(expr, schema);
    let query = match approach {
        Approach::Baseline => Some(Ucqt::path_query(expr.clone())),
        Approach::Schema => match rewrite_path(schema, expr, rewrite).outcome {
            RewriteOutcome::Enriched(q) | RewriteOutcome::Reverted(q) => Some(q),
            RewriteOutcome::Empty => None,
        },
    };
    let (columns, body) = match query {
        None => {
            // Binary path queries expose the standard head (α, β).
            (
                vec!["v0".to_string(), "v1".to_string()],
                PreparedBody::Empty,
            )
        }
        Some(query) => {
            let columns: Vec<String> = query.head.iter().map(|v| format!("v{}", v.raw())).collect();
            let body = match backend {
                Backend::Graph => PreparedBody::Graph(query),
                Backend::Relational | Backend::RelationalUnoptimized => {
                    let mut names = NameGen::new(&store.symbols);
                    let term = ucqt_to_term(&query, &mut names)?;
                    let term = if backend == Backend::Relational {
                        sgq_ra::optimize::optimize(&term, store)
                    } else {
                        term
                    };
                    PreparedBody::Relational(sgq_ra::plan(&term, store)?)
                }
            };
            (columns, body)
        }
    };
    Ok(PreparedQuery {
        canonical,
        backend,
        approach,
        columns,
        body,
        prepare_micros: start.elapsed().as_micros() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::database::fig2_yago_database;
    use sgq_graph::schema::fig1_yago_schema;

    fn setup() -> (GraphSchema, RelStore) {
        let schema = fig1_yago_schema();
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        (schema, store)
    }

    #[test]
    fn relational_prepare_freezes_a_plan() {
        let (schema, store) = setup();
        let expr = parse_path("livesIn/isLocatedIn+", &schema).unwrap();
        let p = prepare(
            &schema,
            &store,
            &expr,
            Backend::Relational,
            Approach::Schema,
            RewriteOptions::default(),
        )
        .unwrap();
        assert!(p.plan().is_some(), "relational body carries a PhysPlan");
        assert_eq!(p.columns(), &["v0", "v1"]);
        assert!(!p.is_provably_empty());
        assert_eq!(p.backend(), Backend::Relational);
        assert_eq!(p.approach(), Approach::Schema);
    }

    #[test]
    fn graph_prepare_carries_the_query() {
        let (schema, store) = setup();
        let expr = parse_path("owns", &schema).unwrap();
        let p = prepare(
            &schema,
            &store,
            &expr,
            Backend::Graph,
            Approach::Baseline,
            RewriteOptions::default(),
        )
        .unwrap();
        assert!(matches!(p.body(), PreparedBody::Graph(_)));
        assert!(p.plan().is_none());
    }

    #[test]
    fn canonical_text_normalises_whitespace() {
        let (schema, _) = setup();
        let a = parse_path("livesIn/isLocatedIn+", &schema).unwrap();
        let b = parse_path("  livesIn /  isLocatedIn+ ", &schema).unwrap();
        assert_eq!(canonical_text(&a, &schema), canonical_text(&b, &schema));
    }

    #[test]
    fn schema_empty_queries_prepare_to_empty_body() {
        let (schema, store) = setup();
        // dealsWith targets COUNTRY only; owns sources PERSON — the
        // composition dealsWith/owns is unsatisfiable under Fig. 1.
        let expr = parse_path("dealsWith/owns", &schema).unwrap();
        let p = prepare(
            &schema,
            &store,
            &expr,
            Backend::Relational,
            Approach::Schema,
            RewriteOptions::default(),
        )
        .unwrap();
        assert!(p.is_provably_empty(), "schema proves the query empty");
    }
}
