//! The concurrent query service: [`Service`] owns the shared state
//! (database, relational store, plan cache, worker pool, metrics);
//! [`Session`]s are cheap cloneable handles that submit queries.
//!
//! A query's life: the session parses the text (cheap), computes the
//! statement's cache key and submits a job to the bounded worker pool —
//! a full queue rejects with [`SgqError::Busy`] *at admission*. On a
//! worker, the statement is served from the sharded plan cache or
//! prepared once ([`crate::prepared::prepare`]), then executed with a
//! per-query deadline that started ticking at submission (queue wait
//! counts against the timeout, reusing the engines' cooperative
//! deadline polling). Results carry execution stats; the registry
//! aggregates QPS, latency percentiles and the cache hit rate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

use sgq_algebra::ast::PathExpr;
use sgq_algebra::parser::parse_path;
use sgq_common::{faultpoint, relation_bytes, ResourceGovernor, Result, SgqError};
use sgq_core::pipeline::RewriteOptions;
use sgq_engine::GraphEngine;
use sgq_graph::{GraphDatabase, GraphSchema};
use sgq_obs::{QueryTrace, SlowQueryLog, TagValue, Tracer};
use sgq_ra::exec::{ExecContext, ExecTrace};
use sgq_ra::{LayoutKind, RelStore, TaskScheduler};

use crate::cache::{schema_fingerprint, CacheKey, CacheOutcome, PlanCache};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::pool::WorkerPool;
use crate::prepared::{prepare, Approach, Backend, PreparedBody, PreparedQuery};

/// Default q-error divergence between a cached plan's root estimate and
/// the feedback memo's observation beyond which the plan is considered
/// stale and re-prepared on its next cache hit.
pub const CACHE_STALENESS_FACTOR: f64 = 8.0;

/// Construction-time configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing queries (>= 1).
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue rejects with
    /// [`SgqError::Busy`] (>= 1).
    pub queue_capacity: usize,
    /// Total prepared statements held by the plan cache.
    pub plan_cache_capacity: usize,
    /// Independently locked cache shards.
    pub plan_cache_shards: usize,
    /// Deadline applied when a call does not set its own (ms).
    pub default_timeout_ms: u64,
    /// Row-materialisation budget per query (0 = unlimited).
    pub default_max_rows: usize,
    /// Intra-query degree of parallelism applied when a call does not
    /// set its own (1 = serial morsel-free execution).
    pub default_dop: usize,
    /// Ceiling on per-query DOP; also sizes the shared morsel
    /// scheduler, bounding the service's intra-query threads.
    pub max_dop: usize,
    /// Probe-row count below which operators stay serial even at
    /// `dop > 1` (the executor's per-morsel overhead gate). Lower it
    /// only to force parallelism on small fixtures (tests, benches).
    pub parallel_row_threshold: usize,
    /// Morsel size cap in rows for parallel sections.
    pub morsel_rows: usize,
    /// A cached plan whose estimated root cardinality diverges from the
    /// feedback memo's observation by at least this q-error factor is
    /// stale: it is dropped and transparently re-prepared on the next
    /// hit (0.0 disables staleness checks).
    pub cache_staleness_factor: f64,
    /// Mid-flight re-planning trigger passed to the executor: a hash
    /// join whose materialised build side reaches `replan_factor ×`
    /// its estimate is corrected at the boundary (0.0 disables).
    pub replan_factor: f64,
    /// Rewrite switches used by [`Approach::Schema`] statements.
    pub rewrite: RewriteOptions,
    /// Start with query tracing enabled (flip at runtime via
    /// [`Service::set_tracing`]). Disabled tracing costs one relaxed
    /// atomic load per query.
    pub tracing: bool,
    /// Trace 1 in N queries when tracing is enabled (1 = every query).
    pub trace_sample_every: u64,
    /// Traces retained by the tracer's ring buffer.
    pub trace_ring_capacity: usize,
    /// Slow-query threshold in milliseconds: a query slower than this
    /// lands in the slow-query log regardless of sampling (0 disables).
    pub slow_query_ms: u64,
    /// Traces retained by the slow-query log's ring buffer.
    pub slow_query_capacity: usize,
    /// Physical storage layout for the relational store: `Some(kind)`
    /// forces that layout, `None` lets the schema-driven
    /// [`sgq_ra::LayoutAdvisor`] choose at load. Ignored by
    /// [`Service::with_store`], which takes a pre-loaded store.
    pub layout: Option<LayoutKind>,
    /// Global ceiling on bytes of materialised intermediate state across
    /// every in-flight query; the query whose charge crosses it aborts
    /// with [`SgqError::BudgetExceeded`] (0 = unlimited).
    pub global_memory_limit: usize,
    /// Per-query memory ceiling applied when a call does not set
    /// [`QueryOptions::max_memory`] (0 = unlimited).
    pub query_memory_limit: usize,
    /// Fraction of `global_memory_limit` at which graceful degradation
    /// kicks in: the service halves the effective admission queue and
    /// re-prepares oversized cached plans (see the governor's
    /// [`ResourceGovernor::under_pressure`]).
    pub memory_pressure_factor: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServiceConfig {
            workers,
            queue_capacity: workers * 8,
            plan_cache_capacity: 256,
            plan_cache_shards: 8,
            default_timeout_ms: 30_000,
            default_max_rows: 20_000_000,
            default_dop: 1,
            max_dop: workers,
            parallel_row_threshold: sgq_ra::cost::PARALLEL_ROW_THRESHOLD,
            morsel_rows: sgq_ra::parallel::MORSEL_ROWS,
            cache_staleness_factor: CACHE_STALENESS_FACTOR,
            replan_factor: sgq_ra::exec::REPLAN_FACTOR,
            rewrite: RewriteOptions::default(),
            tracing: false,
            trace_sample_every: 1,
            trace_ring_capacity: 64,
            slow_query_ms: 0,
            slow_query_capacity: 32,
            layout: None,
            global_memory_limit: 0,
            query_memory_limit: 0,
            memory_pressure_factor: 0.75,
        }
    }
}

impl ServiceConfig {
    /// A config with `workers` worker threads (queue scaled along).
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers: workers.max(1),
            queue_capacity: workers.max(1) * 8,
            ..Default::default()
        }
    }
}

/// Per-call execution options.
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Executing backend.
    pub backend: Backend,
    /// Baseline or schema-rewritten statement.
    pub approach: Approach,
    /// Per-query deadline override (ms).
    pub timeout_ms: Option<u64>,
    /// Row-budget override (0 = unlimited).
    pub max_rows: Option<usize>,
    /// Intra-query DOP override, clamped to
    /// [`ServiceConfig::max_dop`] (relational backend only).
    pub dop: Option<usize>,
    /// Consult/populate the plan cache (`false` re-prepares every call).
    pub use_cache: bool,
    /// Trace this query's execution and return the structured
    /// `EXPLAIN ANALYZE` node array ([`QueryResponse::analyze_json`]) —
    /// rendered from the *production* execution, not a re-run.
    /// Relational backend only (the graph backend has no plan nodes).
    pub analyze: bool,
    /// Per-query memory-budget override in bytes
    /// (`None` = [`ServiceConfig::query_memory_limit`]; `Some(0)` =
    /// unlimited for this call). Relational backend only.
    pub max_memory: Option<usize>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            backend: Backend::Relational,
            approach: Approach::Schema,
            timeout_ms: None,
            max_rows: None,
            dop: None,
            use_cache: true,
            analyze: false,
            max_memory: None,
        }
    }
}

/// Per-query execution statistics returned with the rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// How the prepared statement was obtained.
    pub cache: CacheOutcome,
    /// Time spent queued before a worker picked the job up (µs).
    pub queue_micros: u64,
    /// Front-end time spent by *this* call (0 on a cache hit) (µs).
    pub prepare_micros: u64,
    /// Execution time on the backend (µs).
    pub exec_micros: u64,
    /// End-to-end latency from submission (µs).
    pub total_micros: u64,
    /// Rows materialised by the relational interpreter (0 for the graph
    /// backend, which counts pairs internally).
    pub rows_materialized: usize,
}

/// A completed query: rows, column names and stats.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Result rows (raw node ids), sorted and deduplicated.
    pub rows: Vec<Vec<u32>>,
    /// Output column names, in row order.
    pub columns: Vec<String>,
    /// Execution statistics.
    pub stats: QueryStats,
    /// With [`QueryOptions::analyze`]: the structured `EXPLAIN ANALYZE`
    /// JSON array (one object per plan node, pre-order), rendered from
    /// this very execution's trace. `None` otherwise.
    pub analyze_json: Option<String>,
}

/// Shared immutable service state (everything a worker job needs).
///
/// Deliberately does *not* contain the worker pool: queued jobs hold an
/// `Arc<Core>`, and a job holding the pool would keep the pool's own
/// queue alive in a cycle.
struct Core {
    schema: Arc<GraphSchema>,
    db: Arc<GraphDatabase>,
    store: Arc<RelStore>,
    cache: PlanCache,
    metrics: MetricsRegistry,
    schema_fp: u64,
    schema_version: AtomicU64,
    config: ServiceConfig,
    /// Query-lifecycle tracer (phase + operator spans, ring buffer).
    tracer: Tracer,
    /// Ring of traces for queries over the latency threshold.
    slow_log: SlowQueryLog,
    /// Morsel scheduler shared by every parallel query (lazily spawned
    /// on the first `dop > 1` call, sized to `max_dop` so intra-query
    /// threads stay bounded regardless of concurrent queries).
    exec_scheduler: OnceLock<Arc<TaskScheduler>>,
    /// Memory governor every relational query charges its materialised
    /// state into (per-query + global ceilings, pressure signal).
    governor: Arc<ResourceGovernor>,
}

impl Core {
    fn scheduler(&self) -> Arc<TaskScheduler> {
        Arc::clone(
            self.exec_scheduler
                .get_or_init(|| Arc::new(TaskScheduler::new(self.config.max_dop.max(1)))),
        )
    }
}

/// The concurrent query service.
pub struct Service {
    core: Arc<Core>,
    pool: Arc<WorkerPool>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.pool.worker_count())
            .field("queue_capacity", &self.pool.queue_capacity())
            .field("cache", &self.core.cache)
            .finish()
    }
}

impl Service {
    /// Builds a service over an already-shared schema and database,
    /// loading the relational store once — under
    /// [`ServiceConfig::layout`] when set, otherwise under the layout
    /// the schema-driven advisor picks.
    pub fn new(schema: Arc<GraphSchema>, db: Arc<GraphDatabase>, config: ServiceConfig) -> Self {
        let store = Arc::new(match config.layout {
            Some(kind) => RelStore::load_with_layout(&db, kind),
            None => RelStore::load_advised(&db, &schema),
        });
        Self::with_store(schema, db, store, config)
    }

    /// Builds a service over a pre-loaded relational store. `store` must
    /// have been loaded from `db` — use this when several services share
    /// one database (worker sweeps, benches) to avoid paying
    /// [`RelStore::load`] per service.
    pub fn with_store(
        schema: Arc<GraphSchema>,
        db: Arc<GraphDatabase>,
        store: Arc<RelStore>,
        config: ServiceConfig,
    ) -> Self {
        let schema_fp = schema_fingerprint(&schema);
        let pool = Arc::new(WorkerPool::new(config.workers, config.queue_capacity));
        let tracer = Tracer::new(config.trace_ring_capacity);
        tracer.set_enabled(config.tracing);
        tracer.set_sample_every(config.trace_sample_every);
        let slow_log = SlowQueryLog::new(
            config.slow_query_ms.saturating_mul(1_000),
            config.slow_query_capacity,
        );
        let governor =
            ResourceGovernor::new(config.global_memory_limit, config.memory_pressure_factor);
        let core = Arc::new(Core {
            schema,
            db,
            store,
            cache: PlanCache::new(config.plan_cache_capacity, config.plan_cache_shards),
            metrics: MetricsRegistry::new(),
            schema_fp,
            schema_version: AtomicU64::new(0),
            config,
            tracer,
            slow_log,
            exec_scheduler: OnceLock::new(),
            governor,
        });
        Service { core, pool }
    }

    /// Convenience constructor taking owned schema/database.
    pub fn build(schema: GraphSchema, db: GraphDatabase, config: ServiceConfig) -> Self {
        Service::new(Arc::new(schema), Arc::new(db), config)
    }

    /// Opens a session: a cheap handle submitting queries to this
    /// service's worker pool.
    pub fn session(&self) -> Session {
        Session {
            core: Arc::clone(&self.core),
            pool: Arc::clone(&self.pool),
        }
    }

    /// The schema queries are parsed and rewritten against.
    pub fn schema(&self) -> &Arc<GraphSchema> {
        &self.core.schema
    }

    /// The shared database.
    pub fn database(&self) -> &Arc<GraphDatabase> {
        &self.core.db
    }

    /// Current metrics snapshot (including plan-cache counters).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.core.metrics.snapshot(self.core.cache.stats())
    }

    /// The physical storage layout the relational store was loaded with.
    pub fn layout_kind(&self) -> LayoutKind {
        self.core.store.layout_kind()
    }

    /// The current schema version (bumped by
    /// [`Service::bump_schema_version`]).
    pub fn schema_version(&self) -> u64 {
        self.core.schema_version.load(Ordering::SeqCst)
    }

    /// Signals a schema change: bumps the version (future cache keys
    /// differ), drops every cached statement and clears the cardinality
    /// feedback memo — observations describe the old data, and a stale
    /// memo would silently steer every re-prepared plan.
    pub fn bump_schema_version(&self) -> u64 {
        let v = self.core.schema_version.fetch_add(1, Ordering::SeqCst) + 1;
        self.core.cache.invalidate_all();
        self.core.store.feedback.clear();
        v
    }

    /// The query-lifecycle tracer: toggle, sampling knob and the ring of
    /// recent traces.
    pub fn tracer(&self) -> &Tracer {
        &self.core.tracer
    }

    /// Enables or disables query tracing at runtime (next query onward).
    pub fn set_tracing(&self, on: bool) {
        self.core.tracer.set_enabled(on);
    }

    /// Reconfigures the slow-query threshold in milliseconds (0
    /// disables the log).
    pub fn set_slow_query_ms(&self, ms: u64) {
        self.core
            .slow_log
            .set_threshold_us(ms.saturating_mul(1_000));
    }

    /// The slow-query log (µs-precision threshold control, drained via
    /// [`Session::drain_slow_queries`]).
    pub fn slow_query_log(&self) -> &SlowQueryLog {
        &self.core.slow_log
    }

    /// The memory governor: live/peak bytes of materialised state,
    /// pressure signal, active query count.
    pub fn governor(&self) -> &Arc<ResourceGovernor> {
        &self.core.governor
    }

    /// Panics contained by the worker pool's backstop handler (the
    /// service-level containment in [`Session::submit_expr`] normally
    /// converts panics to [`SgqError::Internal`] before they reach it,
    /// so this staying zero means containment worked at the right
    /// layer).
    pub fn pool_panic_count(&self) -> u64 {
        self.pool.panic_count()
    }

    /// Graceful shutdown: drains queued queries, joins the workers.
    /// Subsequent submissions fail. Idempotent.
    pub fn shutdown(&self) {
        self.pool.shutdown();
    }
}

/// A client handle on a [`Service`]. Clone freely; sessions are
/// independent submitters over the same shared state.
#[derive(Clone)]
pub struct Session {
    core: Arc<Core>,
    pool: Arc<WorkerPool>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").finish_non_exhaustive()
    }
}

/// An in-flight query submitted with [`Session::submit`].
#[derive(Debug)]
pub struct PendingQuery {
    rx: mpsc::Receiver<Result<QueryResponse>>,
}

impl PendingQuery {
    /// Blocks until the worker finishes the query.
    pub fn wait(self) -> Result<QueryResponse> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(SgqError::Execution("worker dropped the query".into())))
    }
}

impl Session {
    /// Parses and executes a path-query string, blocking for the result.
    pub fn execute(&self, text: &str, opts: &QueryOptions) -> Result<QueryResponse> {
        let expr = parse_path(text, self.core.schema.as_ref())?;
        self.execute_expr(&expr, opts)
    }

    /// Executes an already-parsed path expression, blocking.
    pub fn execute_expr(&self, expr: &PathExpr, opts: &QueryOptions) -> Result<QueryResponse> {
        self.submit_expr(expr, opts)?.wait()
    }

    /// Submits a query without waiting (parse errors and admission
    /// rejections surface immediately).
    pub fn submit(&self, text: &str, opts: &QueryOptions) -> Result<PendingQuery> {
        let expr = parse_path(text, self.core.schema.as_ref())?;
        self.submit_expr(&expr, opts)
    }

    /// Submits an already-parsed expression without waiting.
    pub fn submit_expr(&self, expr: &PathExpr, opts: &QueryOptions) -> Result<PendingQuery> {
        let core = Arc::clone(&self.core);
        let expr = expr.clone();
        let opts = *opts;
        let submitted = Instant::now();
        let timeout_ms = opts.timeout_ms.unwrap_or(core.config.default_timeout_ms);
        let deadline = submitted + Duration::from_millis(timeout_ms);
        let (tx, rx) = mpsc::channel();
        // Graceful degradation: under memory pressure the service admits
        // into a halved effective queue, shedding load before the global
        // ceiling starts aborting queries outright.
        let cap = if self.core.governor.under_pressure() {
            self.core.metrics.record_degraded_admission();
            (self.core.config.queue_capacity / 2).max(1)
        } else {
            self.core.config.queue_capacity
        };
        let submit_result = self.pool.try_submit_capped(cap, move || {
            // Panic containment: a panicking query must reach its caller
            // as a structured error — never a hung channel or a dead
            // worker — and must leave the worker healthy for the next
            // job.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_query(&core, &expr, &opts, submitted, deadline, timeout_ms)
            }))
            .unwrap_or_else(|payload| {
                core.metrics.record_worker_panic();
                Err(SgqError::Internal(format!(
                    "worker panicked: {}",
                    panic_message(payload.as_ref())
                )))
            });
            match &result {
                Ok(resp) => core.metrics.record_success(resp.stats.total_micros),
                Err(e) => core.metrics.record_error(e),
            }
            // The client may have given up (e.g. channel dropped); the
            // metrics above still count the work.
            let _ = tx.send(result);
        });
        if let Err(e) = submit_result {
            if e.is_busy() {
                self.core.metrics.record_rejected();
            }
            return Err(e);
        }
        Ok(PendingQuery { rx })
    }

    /// Prepares (or fetches from the cache) the statement for `text`
    /// without executing it — runs inline on the calling thread.
    pub fn prepare(
        &self,
        text: &str,
        opts: &QueryOptions,
    ) -> Result<(Arc<PreparedQuery>, CacheOutcome)> {
        let expr = parse_path(text, self.core.schema.as_ref())?;
        prepare_via_cache(&self.core, &expr, opts)
    }

    /// Current metrics snapshot (shared with [`Service::metrics`]).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.core.metrics.snapshot(self.core.cache.stats())
    }

    /// The traces retained by the tracer's ring buffer, oldest first
    /// (populated when tracing is enabled or a query ran with
    /// [`QueryOptions::analyze`]).
    pub fn recent_traces(&self) -> Vec<Arc<QueryTrace>> {
        self.core.tracer.recent()
    }

    /// Drains the slow-query log: traces of queries whose total latency
    /// crossed [`ServiceConfig::slow_query_ms`], oldest first.
    pub fn drain_slow_queries(&self) -> Vec<Arc<QueryTrace>> {
        self.core.slow_log.drain()
    }
}

/// Serves the statement from the plan cache or runs the front-end once.
///
/// A hit is validated against the cardinality feedback memo: when the
/// cached plan's root estimate diverges from the memo's observation of
/// the same subtree by at least `cache_staleness_factor` (q-error), the
/// entry is dropped and the statement re-prepared — the fresh plan
/// estimates from the memo, so it reflects the measured cardinalities.
fn prepare_via_cache(
    core: &Core,
    expr: &PathExpr,
    opts: &QueryOptions,
) -> Result<(Arc<PreparedQuery>, CacheOutcome)> {
    faultpoint!("service.plan_cache");
    let do_prepare = || {
        prepare(
            &core.schema,
            &core.store,
            expr,
            opts.backend,
            opts.approach,
            core.config.rewrite,
        )
    };
    let note_feedback = |prepared: &PreparedQuery| {
        if prepared.plan().is_some_and(|p| p.uses_memo()) {
            core.metrics.record_feedback_hit();
        }
    };
    if !opts.use_cache {
        let prepared = do_prepare()?;
        note_feedback(&prepared);
        return Ok((Arc::new(prepared), CacheOutcome::Bypass));
    }
    let canonical = crate::prepared::canonical_text(expr, &core.schema);
    let key = CacheKey::new(
        &canonical,
        core.schema_fp,
        core.schema_version.load(Ordering::SeqCst),
        opts.backend,
        opts.approach,
        core.store.layout_kind(),
        &core.config.rewrite,
    );
    let (prepared, outcome) = core.cache.get_or_prepare(key.clone(), do_prepare)?;
    if outcome == CacheOutcome::Hit {
        let stale = plan_is_stale(core, &prepared);
        // Graceful degradation, plan-cache half: under memory pressure a
        // cached plan whose estimated output would not fit the remaining
        // headroom is dropped and re-prepared — the fresh preparation
        // estimates from the feedback memo, so it reflects measured
        // cardinalities and picks the cheaper memory profile the cost
        // model now justifies.
        let oversized = plan_is_oversized(core, &prepared);
        if stale || oversized {
            core.cache.remove(&key);
            if oversized {
                core.metrics.record_pressure_replan();
            } else {
                core.metrics.record_replan();
            }
            let fresh = do_prepare()?;
            note_feedback(&fresh);
            return Ok((
                core.cache.insert(key, Arc::new(fresh)),
                CacheOutcome::Replan,
            ));
        }
    }
    if outcome != CacheOutcome::Hit {
        note_feedback(&prepared);
    }
    Ok((prepared, outcome))
}

/// Whether a cached plan's root estimate diverges from the feedback
/// memo's observed cardinality by the configured staleness factor.
fn plan_is_stale(core: &Core, prepared: &PreparedQuery) -> bool {
    let factor = core.config.cache_staleness_factor;
    if factor <= 0.0 {
        return false;
    }
    let Some(plan) = prepared.plan() else {
        return false;
    };
    match core.store.feedback.lookup(plan.fp) {
        Some(obs) => sgq_ra::cost::q_error(plan.est.rows, obs.rows) >= factor,
        None => false,
    }
}

/// Whether (under memory pressure only) a cached plan's estimated
/// output bytes exceed the governor's remaining global headroom.
fn plan_is_oversized(core: &Core, prepared: &PreparedQuery) -> bool {
    if !core.governor.under_pressure() {
        return false;
    }
    let Some(plan) = prepared.plan() else {
        return false;
    };
    let est_rows = plan.est.rows.max(0.0).min(usize::MAX as f64) as usize;
    relation_bytes(est_rows, prepared.columns().len().max(1)) > core.governor.headroom()
}

/// Renders a caught panic payload (the common `&str` / `String` cases;
/// anything else gets a stable placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execution-side counters captured for the trace's `execute` span.
#[derive(Clone, Copy, Default)]
struct ExecCounters {
    rows_materialized: usize,
    morsels: usize,
    hash_builds: usize,
    step_cache_hits: usize,
    fixpoint_rounds: usize,
    replans: usize,
}

fn outcome_str(o: CacheOutcome) -> &'static str {
    match o {
        CacheOutcome::Hit => "hit",
        CacheOutcome::Miss => "miss",
        CacheOutcome::Bypass => "bypass",
        CacheOutcome::Replan => "replan",
    }
}

/// The worker-side execution of one query.
///
/// The phase timings are always measured (they feed [`QueryStats`]); a
/// [`QueryTrace`] is only assembled when the tracer sampled this query,
/// the caller asked for [`QueryOptions::analyze`], or the query turned
/// out slower than the slow-query threshold. Errors and timeouts on the
/// execution path are traced too — those are exactly the queries worth
/// inspecting.
fn run_query(
    core: &Core,
    expr: &PathExpr,
    opts: &QueryOptions,
    submitted: Instant,
    deadline: Instant,
    timeout_ms: u64,
) -> Result<QueryResponse> {
    faultpoint!("service.dispatch");
    let queue_micros = submitted.elapsed().as_micros() as u64;
    let traced = opts.analyze || core.tracer.should_trace();
    let cache_start = Instant::now();
    let (prepared, cache) = prepare_via_cache(core, expr, opts)?;
    let cache_micros = cache_start.elapsed().as_micros() as u64;
    let prepare_micros = match cache {
        CacheOutcome::Hit => 0,
        CacheOutcome::Miss | CacheOutcome::Bypass | CacheOutcome::Replan => {
            prepared.prepare_micros()
        }
    };
    let max_rows = opts.max_rows.unwrap_or(core.config.default_max_rows);
    let mut counters = ExecCounters::default();
    let mut exec_trace: Option<ExecTrace> = None;
    let exec_start = Instant::now();
    let exec_result: Result<Vec<Vec<u32>>> = (|| {
        match prepared.body() {
            PreparedBody::Empty => Ok(Vec::new()),
            PreparedBody::Graph(query) => {
                // The deadline started at submission: hand the engine only
                // what remains of the budget, rounded *up* to whole ms so a
                // sub-millisecond remainder is not truncated into a spurious
                // timeout.
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(SgqError::Timeout {
                        limit_ms: timeout_ms,
                    });
                }
                let remaining_ms = remaining.as_nanos().div_ceil(1_000_000) as u64;
                let mut engine = GraphEngine::with_timeout(&core.db, remaining_ms);
                engine.set_max_pairs(max_rows);
                // The engine only knows the remaining budget; report the
                // configured timeout (matching the relational path).
                let rows = engine.run_ucqt(query).map_err(|e| match e {
                    SgqError::Timeout { .. } => SgqError::Timeout {
                        limit_ms: timeout_ms,
                    },
                    other => other,
                })?;
                Ok(rows
                    .into_iter()
                    .map(|r| r.into_iter().map(|n| n.raw()).collect())
                    .collect())
            }
            PreparedBody::Relational(plan) => {
                let mut ctx = ExecContext::new();
                ctx.deadline = Some(deadline);
                ctx.limit_ms = timeout_ms;
                ctx.max_rows = max_rows;
                ctx.replan_factor = core.config.replan_factor;
                // Every relational query charges its materialised bytes
                // into the shared governor; the budget handle releases
                // the balance when this arm returns (success, error or
                // deadline alike), so the governor reads zero between
                // queries.
                let query_limit = opts.max_memory.unwrap_or(core.config.query_memory_limit);
                ctx.budget = Some(core.governor.begin(query_limit));
                let dop = opts
                    .dop
                    .unwrap_or(core.config.default_dop)
                    .clamp(1, core.config.max_dop.max(1));
                if dop > 1 {
                    ctx.dop = dop;
                    ctx.parallel_threshold = core.config.parallel_row_threshold;
                    ctx.morsel_rows = core.config.morsel_rows.max(1);
                    ctx.set_scheduler(core.scheduler());
                }
                let ran = if traced {
                    sgq_ra::exec::execute_plan_traced_at(
                        plan,
                        &core.store,
                        &mut ctx,
                        core.tracer.clock(),
                    )
                    .map(|(rel, trace)| {
                        exec_trace = Some(trace);
                        rel
                    })
                } else {
                    sgq_ra::execute_plan(plan, &core.store, &mut ctx)
                };
                core.metrics.record_parallel(ctx.morsels_executed);
                core.metrics
                    .record_scans(core.store.layout_kind(), ctx.scans);
                counters = ExecCounters {
                    rows_materialized: ctx.rows_materialized(),
                    morsels: ctx.morsels_executed,
                    hash_builds: ctx.hash_builds,
                    step_cache_hits: ctx.cache_hits,
                    fixpoint_rounds: ctx.fixpoint_rounds,
                    replans: ctx.replans,
                };
                let rel = ran?;
                Ok(rel.rows().map(|r| r.to_vec()).collect())
            }
        }
    })();
    let exec_micros = exec_start.elapsed().as_micros() as u64;
    let total_micros = submitted.elapsed().as_micros() as u64;
    let analyze_json = match (&exec_result, exec_trace.as_ref(), prepared.plan()) {
        (Ok(_), Some(trace), Some(plan)) if opts.analyze => Some(
            sgq_ra::explain::analyze_json(plan, &core.store, core.schema.as_ref(), trace).render(),
        ),
        _ => None,
    };
    if traced || core.slow_log.is_slow(total_micros) {
        let mut tb = core.tracer.builder(prepared.canonical());
        if let Some(plan) = prepared.plan() {
            tb.set_fingerprint(plan.fp);
        }
        let clock = core.tracer.clock();
        let t_submit = clock.us_of(submitted);
        let mut root_tags: Vec<(&'static str, TagValue)> = vec![
            ("backend", format!("{:?}", prepared.backend()).into()),
            ("cache", outcome_str(cache).into()),
            ("replans", counters.replans.into()),
        ];
        if let Err(e) = &exec_result {
            root_tags.push(("error", e.to_string().into()));
        }
        let root = tb.add_span("query", 0, t_submit, total_micros, root_tags);
        tb.add_span("queue", root, t_submit, queue_micros, Vec::new());
        let t_pickup = t_submit + queue_micros;
        let cache_span = tb.add_span(
            "cache",
            root,
            t_pickup,
            cache_micros,
            vec![("outcome", outcome_str(cache).into())],
        );
        if prepare_micros > 0 {
            // Preparation ran inside the cache-lookup window; truncation
            // to whole µs can leave it a hair wider, so clamp for clean
            // nesting.
            let dur = prepare_micros.min(cache_micros);
            let start = t_pickup + cache_micros - dur;
            tb.add_span("prepare", cache_span, start, dur, Vec::new());
        }
        let exec_tags: Vec<(&'static str, TagValue)> = vec![
            ("rows_materialized", counters.rows_materialized.into()),
            ("morsels", counters.morsels.into()),
            ("hash_builds", counters.hash_builds.into()),
            ("step_cache_hits", counters.step_cache_hits.into()),
            ("fixpoint_rounds", counters.fixpoint_rounds.into()),
        ];
        tb.add_span(
            "execute",
            root,
            clock.us_of(exec_start),
            exec_micros,
            exec_tags,
        );
        if let Some(trace) = exec_trace.take() {
            tb.set_ops(trace.spans);
        }
        let trace = Arc::new(tb.finish());
        core.metrics.record_ops(&trace.ops);
        if traced {
            core.tracer.record(Arc::clone(&trace));
        }
        core.slow_log.offer(total_micros, || trace);
    }
    let rows = exec_result?;
    Ok(QueryResponse {
        rows,
        columns: prepared.columns().to_vec(),
        stats: QueryStats {
            cache,
            queue_micros,
            prepare_micros,
            exec_micros,
            total_micros,
            rows_materialized: counters.rows_materialized,
        },
        analyze_json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_graph::database::fig2_yago_database;
    use sgq_graph::schema::fig1_yago_schema;

    fn small_service(workers: usize) -> Service {
        Service::build(
            fig1_yago_schema(),
            fig2_yago_database(),
            ServiceConfig::with_workers(workers),
        )
    }

    #[test]
    fn execute_returns_rows_and_stats() {
        let service = small_service(2);
        let session = service.session();
        let resp = session
            .execute("livesIn/isLocatedIn+", &QueryOptions::default())
            .unwrap();
        assert!(!resp.rows.is_empty());
        assert_eq!(resp.columns, vec!["v0", "v1"]);
        assert_eq!(resp.stats.cache, CacheOutcome::Miss);
        assert!(resp.stats.total_micros >= resp.stats.exec_micros);
        service.shutdown();
    }

    #[test]
    fn graph_and_relational_agree() {
        let service = small_service(2);
        let session = service.session();
        for text in ["owns/isLocatedIn+", "isMarriedTo+", "livesIn"] {
            let mut rows = Vec::new();
            for backend in [
                Backend::Graph,
                Backend::Relational,
                Backend::RelationalUnoptimized,
            ] {
                for approach in [Approach::Baseline, Approach::Schema] {
                    let opts = QueryOptions {
                        backend,
                        approach,
                        ..Default::default()
                    };
                    rows.push(session.execute(text, &opts).unwrap().rows);
                }
            }
            assert!(
                rows.windows(2).all(|w| w[0] == w[1]),
                "backends disagree on {text}"
            );
        }
        service.shutdown();
    }

    #[test]
    fn layout_override_and_advisor_agree_on_rows() {
        // fig1's isLocatedIn spans two schema triples, so the advisor
        // picks the denormalised layout for the default service.
        let advised = small_service(1);
        assert_eq!(advised.layout_kind(), LayoutKind::Denormalized);
        let texts = ["owns/isLocatedIn+", "isMarriedTo+", "livesIn"];
        let reference: Vec<_> = texts
            .iter()
            .map(|t| {
                advised
                    .session()
                    .execute(t, &QueryOptions::default())
                    .unwrap()
                    .rows
            })
            .collect();
        for kind in LayoutKind::ALL {
            let config = ServiceConfig {
                layout: Some(kind),
                ..ServiceConfig::with_workers(1)
            };
            let service = Service::build(fig1_yago_schema(), fig2_yago_database(), config);
            assert_eq!(service.layout_kind(), kind, "override must win");
            for (text, want) in texts.iter().zip(&reference) {
                let got = service
                    .session()
                    .execute(text, &QueryOptions::default())
                    .unwrap();
                assert_eq!(&got.rows, want, "{text} diverged under {kind}");
            }
            // Every query scanned base tables; the counters land in this
            // layout's bucket and no other.
            let m = service.metrics();
            for (i, k) in LayoutKind::ALL.iter().enumerate() {
                if *k == kind {
                    assert!(m.scans_by_layout[i] > 0, "{m}");
                } else {
                    assert_eq!(m.scans_by_layout[i], 0, "{m}");
                }
            }
            service.shutdown();
        }
        advised.shutdown();
    }

    #[test]
    fn parse_errors_surface_before_submission() {
        let service = small_service(1);
        let session = service.session();
        let err = session
            .execute("noSuchLabel///", &QueryOptions::default())
            .unwrap_err();
        assert!(matches!(err, SgqError::Parse { .. }), "got {err}");
        service.shutdown();
    }

    #[test]
    fn provably_empty_queries_return_no_rows() {
        let service = small_service(1);
        let session = service.session();
        let resp = session
            .execute("dealsWith/owns", &QueryOptions::default())
            .unwrap();
        assert!(resp.rows.is_empty());
        service.shutdown();
    }

    #[test]
    fn zero_timeout_classifies_as_timeout() {
        let service = small_service(1);
        let session = service.session();
        let opts = QueryOptions {
            timeout_ms: Some(0),
            ..Default::default()
        };
        let err = session.execute("isLocatedIn+", &opts).unwrap_err();
        assert!(err.is_timeout(), "got {err}");
        assert_eq!(service.metrics().timeouts, 1);
        service.shutdown();
    }

    #[test]
    fn schema_version_bump_invalidates() {
        let service = small_service(1);
        let session = service.session();
        let opts = QueryOptions::default();
        let (first, o1) = session.prepare("owns", &opts).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        let (second, o2) = session.prepare("owns", &opts).unwrap();
        assert_eq!(o2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(service.bump_schema_version(), 1);
        let (third, o3) = session.prepare("owns", &opts).unwrap();
        assert_eq!(o3, CacheOutcome::Miss, "version bump must re-prepare");
        assert!(!Arc::ptr_eq(&first, &third));
        service.shutdown();
    }

    #[test]
    fn stale_cached_plans_are_transparently_replanned() {
        let schema = Arc::new(fig1_yago_schema());
        let db = Arc::new(fig2_yago_database());
        let store = Arc::new(RelStore::load(&db));
        let service = Service::with_store(
            schema,
            db,
            Arc::clone(&store),
            ServiceConfig::with_workers(1),
        );
        let session = service.session();
        let opts = QueryOptions::default();
        let (first, o1) = session.prepare("owns/isLocatedIn+", &opts).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        let plan = first.plan().unwrap();
        // Simulate execution feedback diverging 1000× from the estimate.
        store
            .feedback
            .observe(plan.fp, (plan.est.rows as usize + 1) * 1000);
        let (second, o2) = session.prepare("owns/isLocatedIn+", &opts).unwrap();
        assert_eq!(o2, CacheOutcome::Replan, "divergent plan must re-prepare");
        assert!(!Arc::ptr_eq(&first, &second));
        assert!(
            second.plan().unwrap().memo_est,
            "the fresh plan estimates from the memo"
        );
        let m = service.metrics();
        assert_eq!(m.replans, 1, "{m}");
        assert!(m.feedback_hits >= 1, "{m}");
        // The refreshed entry agrees with the memo: plain hits again.
        let (third, o3) = session.prepare("owns/isLocatedIn+", &opts).unwrap();
        assert_eq!(o3, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&second, &third));
        assert_eq!(service.metrics().replans, 1);
        service.shutdown();
    }

    #[test]
    fn schema_version_bump_clears_the_feedback_memo() {
        let schema = Arc::new(fig1_yago_schema());
        let db = Arc::new(fig2_yago_database());
        let store = Arc::new(RelStore::load(&db));
        let service = Service::with_store(
            schema,
            db,
            Arc::clone(&store),
            ServiceConfig::with_workers(1),
        );
        let session = service.session();
        session
            .execute("owns/isLocatedIn+", &QueryOptions::default())
            .unwrap();
        assert!(
            !store.feedback.is_empty(),
            "execution populates the feedback memo"
        );
        service.bump_schema_version();
        assert!(
            store.feedback.is_empty(),
            "a schema bump must drop observations of the old data"
        );
        service.shutdown();
    }

    #[test]
    fn parallel_dop_matches_serial_and_moves_counters() {
        // Force parallel sections on the tiny fixture: threshold 1 and
        // a 2-row morsel cap make every join probe split into morsels.
        // Pinned to the per-label layout: the advisor's denormalised
        // slices replace the one probe large enough to split here.
        let config = ServiceConfig {
            max_dop: 4,
            parallel_row_threshold: 1,
            morsel_rows: 2,
            layout: Some(LayoutKind::PerLabel),
            ..ServiceConfig::with_workers(2)
        };
        let service = Service::build(fig1_yago_schema(), fig2_yago_database(), config);
        let session = service.session();
        for text in ["owns/isLocatedIn+", "isMarriedTo+", "livesIn/isLocatedIn+"] {
            let serial = session.execute(text, &QueryOptions::default()).unwrap();
            let opts = QueryOptions {
                dop: Some(4),
                ..Default::default()
            };
            let parallel = session.execute(text, &opts).unwrap();
            assert_eq!(serial.rows, parallel.rows, "DOP=4 diverged on {text}");
        }
        let m = service.metrics();
        assert!(m.parallel_queries >= 1, "no query went parallel: {m}");
        assert!(m.morsels_executed >= 2 * m.parallel_queries, "{m}");
        service.shutdown();
    }

    #[test]
    fn sub_threshold_queries_stay_serial_despite_dop() {
        // Default threshold (16K probe rows) dwarfs the fixture: a
        // dop > 1 request must not dispatch a single morsel.
        let service = small_service(2);
        let session = service.session();
        let opts = QueryOptions {
            dop: Some(4),
            ..Default::default()
        };
        let resp = session.execute("owns/isLocatedIn+", &opts).unwrap();
        assert!(!resp.rows.is_empty());
        let m = service.metrics();
        assert_eq!(m.parallel_queries, 0, "{m}");
        assert_eq!(m.morsels_executed, 0, "{m}");
        service.shutdown();
    }

    #[test]
    fn requested_dop_is_clamped_to_max_dop() {
        let config = ServiceConfig {
            max_dop: 2,
            parallel_row_threshold: 1,
            morsel_rows: 2,
            ..ServiceConfig::with_workers(2)
        };
        let service = Service::build(fig1_yago_schema(), fig2_yago_database(), config);
        let session = service.session();
        let opts = QueryOptions {
            dop: Some(64), // clamped to max_dop = 2
            ..Default::default()
        };
        let serial = session
            .execute("owns/isLocatedIn+", &QueryOptions::default())
            .unwrap();
        let clamped = session.execute("owns/isLocatedIn+", &opts).unwrap();
        assert_eq!(serial.rows, clamped.rows);
        service.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_queries() {
        let service = small_service(1);
        let session = service.session();
        service.shutdown();
        let err = session
            .execute("owns", &QueryOptions::default())
            .unwrap_err();
        assert!(matches!(err, SgqError::Execution(_)), "got {err}");
    }

    #[test]
    fn analyze_option_renders_the_production_execution() {
        let service = small_service(1);
        let session = service.session();
        let opts = QueryOptions {
            analyze: true,
            ..Default::default()
        };
        let resp = session.execute("livesIn/isLocatedIn+", &opts).unwrap();
        let json = resp.analyze_json.as_deref().expect("analyze json");
        let parsed = sgq_common::json::parse(json).unwrap();
        let nodes = parsed.as_arr().expect("node array");
        assert!(!nodes.is_empty());
        for node in nodes {
            assert!(node.get("op").and_then(|v| v.as_str()).is_some());
            assert!(node.get("actual_rows").and_then(|v| v.as_u64()).is_some());
        }
        // The analyze run is also traced: its per-operator spans must
        // agree with the analyze output row for row.
        let traces = session.recent_traces();
        let trace = traces.last().expect("analyze query traced");
        for op in &trace.ops {
            let actual = nodes
                .iter()
                .find(|n| n.get("id").and_then(|v| v.as_u64()) == Some(op.node as u64))
                .and_then(|n| n.get("actual_rows"))
                .and_then(|v| v.as_u64())
                .expect("span node present in analyze output");
            assert_eq!(op.rows as u64, actual, "node {} disagrees", op.node);
        }
        // Without the option the field stays empty.
        let plain = session
            .execute("livesIn/isLocatedIn+", &QueryOptions::default())
            .unwrap();
        assert_eq!(plain.analyze_json, None);
        // The graph backend has no plan nodes to analyze.
        let graph = session
            .execute(
                "livesIn/isLocatedIn+",
                &QueryOptions {
                    backend: Backend::Graph,
                    analyze: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(graph.analyze_json, None);
        service.shutdown();
    }

    #[test]
    fn traced_query_records_all_lifecycle_phases() {
        let config = ServiceConfig {
            tracing: true,
            ..ServiceConfig::with_workers(1)
        };
        let service = Service::build(fig1_yago_schema(), fig2_yago_database(), config);
        let session = service.session();
        let resp = session
            .execute("owns/isLocatedIn+", &QueryOptions::default())
            .unwrap();
        let traces = session.recent_traces();
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];
        assert_ne!(trace.fingerprint, 0);
        let phase = |name: &str| {
            trace
                .phases
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing {name} span in {trace:?}"))
        };
        let root = phase("query");
        assert_eq!(root.parent, 0);
        for name in ["queue", "cache", "execute"] {
            assert_eq!(phase(name).parent, root.id, "{name} not under root");
        }
        // Cache miss: preparation ran, nested inside the cache lookup.
        assert_eq!(phase("prepare").parent, phase("cache").id);
        assert!(!trace.ops.is_empty(), "operator spans missing");
        // Op spans are recorded on exit, so the root operator closes
        // last; its output is the response row set and its span
        // encloses every other op span.
        let root_op = trace.ops.last().unwrap();
        assert_eq!(root_op.rows, resp.rows.len());
        let root_end = root_op.start_us + root_op.dur_us;
        assert!(trace.ops.iter().all(|o| o.start_us + o.dur_us <= root_end));
        assert!(trace.ops.iter().all(|o| o.start_us >= root_op.start_us));
        // Traced operators feed the always-on per-kind profile registry.
        let m = service.metrics();
        assert!(!m.op_profiles.is_empty(), "{m}");
        let profiled: u64 = m.op_profiles.iter().map(|p| p.evals).sum();
        assert_eq!(profiled, trace.ops.len() as u64, "{m}");
        service.shutdown();
    }

    #[test]
    fn slow_query_log_captures_over_threshold_queries() {
        let service = small_service(1);
        let session = service.session();
        // Threshold of 1µs: everything is slow — even with tracing off
        // the lifecycle spans are still captured for the log.
        service.slow_query_log().set_threshold_us(1);
        assert!(!service.tracer().is_enabled());
        session
            .execute("owns/isLocatedIn+", &QueryOptions::default())
            .unwrap();
        let slow = session.drain_slow_queries();
        assert_eq!(slow.len(), 1);
        assert!(slow[0].phases.iter().any(|s| s.name == "execute"));
        assert!(session.drain_slow_queries().is_empty());
        assert!(session.recent_traces().is_empty(), "sampling stayed off");
        // Raising the threshold stops capture.
        service.slow_query_log().set_threshold_us(u64::MAX);
        session
            .execute("owns/isLocatedIn+", &QueryOptions::default())
            .unwrap();
        assert!(session.drain_slow_queries().is_empty());
        service.shutdown();
    }

    #[test]
    fn sampling_traces_a_subset_of_queries() {
        let config = ServiceConfig {
            tracing: true,
            trace_sample_every: 3,
            ..ServiceConfig::with_workers(1)
        };
        let service = Service::build(fig1_yago_schema(), fig2_yago_database(), config);
        let session = service.session();
        for _ in 0..9 {
            session.execute("owns", &QueryOptions::default()).unwrap();
        }
        assert_eq!(session.recent_traces().len(), 3);
        service.set_tracing(false);
        session.execute("owns", &QueryOptions::default()).unwrap();
        assert_eq!(session.recent_traces().len(), 3);
        service.shutdown();
    }
}
