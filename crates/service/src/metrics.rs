//! The serving metrics registry.
//!
//! Lock-free counters plus a geometric latency histogram, updated by the
//! workers on every completed query and snapshotted on demand:
//! throughput (QPS since start), latency percentiles (p50/p95/p99 from
//! the histogram), error/timeout/rejection counts and the plan cache's
//! hit rate. Snapshots render as a human table ([`std::fmt::Display`])
//! or JSON through the workspace JSON writer
//! ([`sgq_common::json::JsonValue`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use sgq_common::json::JsonValue;
use sgq_obs::{OpKindProfile, OpSpan, ProfileRegistry};
use sgq_ra::LayoutKind;

use crate::cache::CacheStats;

/// The position of `kind` in [`LayoutKind::ALL`] — the bucket index of
/// the per-layout scan counters.
fn layout_idx(kind: LayoutKind) -> usize {
    LayoutKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("ALL covers every layout kind")
}

/// A fixed-bucket geometric latency histogram (microsecond domain).
///
/// Bucket bounds grow by ~19% (`2^(1/4)`), covering 1 µs to ~50 minutes
/// in 128 buckets — percentile estimates are within one bucket ratio of
/// exact, with constant memory and lock-free recording.
#[derive(Debug)]
pub struct LatencyHistogram {
    /// Upper bounds (inclusive), in microseconds, strictly increasing.
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Builds the bucket table.
    pub fn new() -> Self {
        let mut bounds = Vec::new();
        let mut b = 1.0f64;
        while bounds.len() < 128 {
            let bound = b.ceil() as u64;
            if bounds.last().is_none_or(|&prev| bound > prev) {
                bounds.push(bound);
            }
            b *= std::f64::consts::SQRT_2.sqrt(); // 2^(1/4)
        }
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        LatencyHistogram { bounds, counts }
    }

    /// Records one observation.
    pub fn record(&self, micros: u64) {
        let idx = self.bounds.partition_point(|&b| b < micros);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (0 < q <= 1) in microseconds, `None` when empty.
    /// Reports the upper bound of the bucket holding the quantile.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                let bound = self
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| *self.bounds.last().expect("non-empty table"));
                return Some(bound as f64);
            }
        }
        None
    }
}

/// Shared, lock-free serving counters.
#[derive(Debug)]
pub struct MetricsRegistry {
    started: Instant,
    completed: AtomicU64,
    errors: AtomicU64,
    row_budget_errors: AtomicU64,
    memory_budget_errors: AtomicU64,
    transient_errors: AtomicU64,
    worker_panics: AtomicU64,
    degraded_admissions: AtomicU64,
    pressure_replans: AtomicU64,
    timeouts: AtomicU64,
    rejected: AtomicU64,
    total_micros: AtomicU64,
    morsels_executed: AtomicU64,
    parallel_queries: AtomicU64,
    replans: AtomicU64,
    feedback_hits: AtomicU64,
    /// Base-table scan operators executed, bucketed by the store's
    /// physical layout ([`LayoutKind::ALL`] order).
    scans_by_layout: [AtomicU64; 3],
    latency: LatencyHistogram,
    /// Always-on per-operator-kind profile, fed by traced executions.
    ops: ProfileRegistry,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A fresh registry; QPS is measured from this instant.
    pub fn new() -> Self {
        MetricsRegistry {
            started: Instant::now(),
            completed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            row_budget_errors: AtomicU64::new(0),
            memory_budget_errors: AtomicU64::new(0),
            transient_errors: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            degraded_admissions: AtomicU64::new(0),
            pressure_replans: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
            morsels_executed: AtomicU64::new(0),
            parallel_queries: AtomicU64::new(0),
            replans: AtomicU64::new(0),
            feedback_hits: AtomicU64::new(0),
            scans_by_layout: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            latency: LatencyHistogram::new(),
            ops: ProfileRegistry::new(),
        }
    }

    /// Records a successful query with its end-to-end latency.
    pub fn record_success(&self, micros: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.latency.record(micros);
    }

    /// Records a failed query by kind: timeouts and admission
    /// rejections keep their dedicated counters; everything else counts
    /// into `errors`, with row-budget, memory-budget and injected
    /// transient failures additionally tallied so snapshots can break
    /// the total down.
    pub fn record_error(&self, err: &sgq_common::SgqError) {
        if err.is_timeout() {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
        } else if err.is_busy() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
            if err.is_row_budget() {
                self.row_budget_errors.fetch_add(1, Ordering::Relaxed);
            } else if err.is_budget() {
                self.memory_budget_errors.fetch_add(1, Ordering::Relaxed);
            } else if err.is_transient() {
                self.transient_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records an admission rejection ([`sgq_common::SgqError::Busy`]).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a worker panic caught and converted to
    /// [`sgq_common::SgqError::Internal`] (the query also lands in the
    /// error counters via [`MetricsRegistry::record_error`]).
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a submission admitted through the degraded (halved)
    /// queue because the governor was under memory pressure.
    pub fn record_degraded_admission(&self) {
        self.degraded_admissions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cached plan dropped under memory pressure because its
    /// estimated output would not fit the governor's headroom.
    pub fn record_pressure_replan(&self) {
        self.pressure_replans.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a query's morsel-parallel work: `morsels` is the number of
    /// morsel tasks the executor dispatched (0 for a fully serial query).
    pub fn record_parallel(&self, morsels: usize) {
        if morsels > 0 {
            self.morsels_executed
                .fetch_add(morsels as u64, Ordering::Relaxed);
            self.parallel_queries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a cached plan found stale against the feedback memo and
    /// transparently re-prepared.
    pub fn record_replan(&self) {
        self.replans.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a prepare whose plan drew at least one estimate from the
    /// cardinality feedback memo.
    pub fn record_feedback_hit(&self) {
        self.feedback_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `scans` base-table scan operators executed against a
    /// store loaded under `layout` (no-op for a scan-free query).
    pub fn record_scans(&self, layout: LayoutKind, scans: usize) {
        if scans > 0 {
            self.scans_by_layout[layout_idx(layout)].fetch_add(scans as u64, Ordering::Relaxed);
        }
    }

    /// Folds one traced execution's operator spans into the always-on
    /// per-operator-kind profile (one lock per traced query).
    pub fn record_ops(&self, spans: &[OpSpan]) {
        self.ops.record(spans);
    }

    /// Snapshots every counter, folding in the plan cache's stats.
    pub fn snapshot(&self, cache: CacheStats) -> MetricsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let elapsed_s = self.started.elapsed().as_secs_f64().max(1e-9);
        let to_ms = |micros: Option<f64>| micros.map_or(0.0, |us| us / 1e3);
        let errors = self.errors.load(Ordering::Relaxed);
        let row_budget = self.row_budget_errors.load(Ordering::Relaxed);
        let memory_budget = self.memory_budget_errors.load(Ordering::Relaxed);
        let transient = self.transient_errors.load(Ordering::Relaxed);
        MetricsSnapshot {
            completed,
            errors,
            errors_row_budget: row_budget,
            errors_memory_budget: memory_budget,
            errors_transient: transient,
            errors_other: errors
                .saturating_sub(row_budget)
                .saturating_sub(memory_budget)
                .saturating_sub(transient),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            degraded_admissions: self.degraded_admissions.load(Ordering::Relaxed),
            pressure_replans: self.pressure_replans.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            elapsed_s,
            qps: completed as f64 / elapsed_s,
            mean_ms: if completed == 0 {
                0.0
            } else {
                self.total_micros.load(Ordering::Relaxed) as f64 / completed as f64 / 1e3
            },
            p50_ms: to_ms(self.latency.quantile(0.50)),
            p95_ms: to_ms(self.latency.quantile(0.95)),
            p99_ms: to_ms(self.latency.quantile(0.99)),
            morsels_executed: self.morsels_executed.load(Ordering::Relaxed),
            parallel_queries: self.parallel_queries.load(Ordering::Relaxed),
            replans: self.replans.load(Ordering::Relaxed),
            feedback_hits: self.feedback_hits.load(Ordering::Relaxed),
            scans_by_layout: [
                self.scans_by_layout[0].load(Ordering::Relaxed),
                self.scans_by_layout[1].load(Ordering::Relaxed),
                self.scans_by_layout[2].load(Ordering::Relaxed),
            ],
            op_profiles: self.ops.snapshot(),
            cache,
        }
    }
}

/// A point-in-time view of the registry, renderable as text or JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Successfully completed queries.
    pub completed: u64,
    /// Failed queries (excluding timeouts and rejections).
    pub errors: u64,
    /// Of `errors`: row/pair-budget breaches.
    pub errors_row_budget: u64,
    /// Of `errors`: memory-budget breaches (governor aborts).
    pub errors_memory_budget: u64,
    /// Of `errors`: injected transient faults.
    pub errors_transient: u64,
    /// Of `errors`: everything not broken out above.
    pub errors_other: u64,
    /// Worker panics caught and converted to structured errors.
    pub worker_panics: u64,
    /// Submissions admitted through the degraded (halved) queue while
    /// the governor was under memory pressure.
    pub degraded_admissions: u64,
    /// Cached plans dropped under memory pressure (estimated output
    /// exceeded the governor's headroom) and re-prepared.
    pub pressure_replans: u64,
    /// Queries that exceeded their deadline.
    pub timeouts: u64,
    /// Queries rejected at admission (queue full / busy).
    pub rejected: u64,
    /// Seconds since the registry was created.
    pub elapsed_s: f64,
    /// Completed queries per second since start.
    pub qps: f64,
    /// Mean end-to-end latency (ms).
    pub mean_ms: f64,
    /// Median end-to-end latency (ms).
    pub p50_ms: f64,
    /// 95th percentile latency (ms).
    pub p95_ms: f64,
    /// 99th percentile latency (ms).
    pub p99_ms: f64,
    /// Morsel tasks dispatched by parallel query sections.
    pub morsels_executed: u64,
    /// Queries that ran at least one parallel section.
    pub parallel_queries: u64,
    /// Cached plans found stale against the feedback memo and
    /// transparently re-prepared.
    pub replans: u64,
    /// Prepares whose plan drew an estimate from the feedback memo.
    pub feedback_hits: u64,
    /// Base-table scan operators executed, bucketed by the store's
    /// physical layout (in [`LayoutKind::ALL`] order: per-label,
    /// polymorphic, denormalized).
    pub scans_by_layout: [u64; 3],
    /// Per-operator-kind runtime totals from traced executions, ordered
    /// by self time (descending).
    pub op_profiles: Vec<OpKindProfile>,
    /// Plan-cache counters.
    pub cache: CacheStats,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object via the workspace writer.
    pub fn to_json(&self) -> String {
        JsonValue::obj([
            ("completed", JsonValue::Int(self.completed)),
            ("errors", JsonValue::Int(self.errors)),
            // The breakdown by kind: timeout and busy map onto their
            // dedicated counters, the rest splits `errors`.
            ("errors_timeout", JsonValue::Int(self.timeouts)),
            ("errors_busy", JsonValue::Int(self.rejected)),
            ("errors_row_budget", JsonValue::Int(self.errors_row_budget)),
            (
                "errors_memory_budget",
                JsonValue::Int(self.errors_memory_budget),
            ),
            ("errors_transient", JsonValue::Int(self.errors_transient)),
            ("errors_other", JsonValue::Int(self.errors_other)),
            ("worker_panics", JsonValue::Int(self.worker_panics)),
            (
                "degraded_admissions",
                JsonValue::Int(self.degraded_admissions),
            ),
            ("pressure_replans", JsonValue::Int(self.pressure_replans)),
            ("timeouts", JsonValue::Int(self.timeouts)),
            ("rejected", JsonValue::Int(self.rejected)),
            ("elapsed_s", JsonValue::Num(self.elapsed_s)),
            ("qps", JsonValue::Num(self.qps)),
            ("mean_ms", JsonValue::Num(self.mean_ms)),
            ("p50_ms", JsonValue::Num(self.p50_ms)),
            ("p95_ms", JsonValue::Num(self.p95_ms)),
            ("p99_ms", JsonValue::Num(self.p99_ms)),
            ("morsels_executed", JsonValue::Int(self.morsels_executed)),
            ("parallel_queries", JsonValue::Int(self.parallel_queries)),
            ("replans", JsonValue::Int(self.replans)),
            ("feedback_hits", JsonValue::Int(self.feedback_hits)),
            (
                "scans_by_layout",
                JsonValue::obj(
                    LayoutKind::ALL
                        .iter()
                        .zip(self.scans_by_layout)
                        .map(|(k, n)| (k.name(), JsonValue::Int(n))),
                ),
            ),
            (
                "op_profiles",
                JsonValue::Arr(
                    self.op_profiles
                        .iter()
                        .map(|p| {
                            JsonValue::obj([
                                ("kind", JsonValue::str(p.kind.clone())),
                                ("evals", JsonValue::Int(p.evals)),
                                ("rows", JsonValue::Int(p.rows)),
                                ("self_us", JsonValue::Int(p.self_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("cache_hits", JsonValue::Int(self.cache.hits)),
            ("cache_misses", JsonValue::Int(self.cache.misses)),
            ("cache_evictions", JsonValue::Int(self.cache.evictions)),
            (
                "cache_invalidations",
                JsonValue::Int(self.cache.invalidations),
            ),
            ("cache_entries", JsonValue::Int(self.cache.entries as u64)),
            ("cache_hit_rate", JsonValue::Num(self.cache.hit_rate())),
        ])
        .render()
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "queries: {} ok, {} errors ({} row-budget, {} memory-budget, {} transient, \
             {} other), {} timeouts, {} rejected ({:.1} qps over {:.2}s)",
            self.completed,
            self.errors,
            self.errors_row_budget,
            self.errors_memory_budget,
            self.errors_transient,
            self.errors_other,
            self.timeouts,
            self.rejected,
            self.qps,
            self.elapsed_s
        )?;
        if self.worker_panics + self.degraded_admissions + self.pressure_replans > 0 {
            writeln!(
                f,
                "robustness: {} worker panics contained, {} degraded admissions, \
                 {} pressure re-prepares",
                self.worker_panics, self.degraded_admissions, self.pressure_replans
            )?;
        }
        writeln!(
            f,
            "latency: mean {:.3} ms, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
            self.mean_ms, self.p50_ms, self.p95_ms, self.p99_ms
        )?;
        writeln!(
            f,
            "parallel: {} queries ran parallel sections, {} morsels executed",
            self.parallel_queries, self.morsels_executed
        )?;
        writeln!(
            f,
            "feedback: {} memo-informed prepares, {} stale plans re-prepared",
            self.feedback_hits, self.replans
        )?;
        writeln!(
            f,
            "scans: {} per-label, {} polymorphic, {} denormalized",
            self.scans_by_layout[0], self.scans_by_layout[1], self.scans_by_layout[2]
        )?;
        if !self.op_profiles.is_empty() {
            write!(f, "operators (self time):")?;
            for (i, p) in self.op_profiles.iter().enumerate() {
                write!(
                    f,
                    "{} {} {:.3} ms / {} evals / {} rows",
                    if i == 0 { "" } else { ";" },
                    p.kind,
                    p.self_us as f64 / 1e3,
                    p.evals,
                    p.rows
                )?;
            }
            writeln!(f)?;
        }
        write!(
            f,
            "plan cache: {} hits / {} misses ({:.0}% hit rate), {} entries, {} evicted, {} invalidated",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.entries,
            self.cache.evictions,
            self.cache.invalidations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bounds_are_strictly_increasing() {
        let h = LatencyHistogram::new();
        assert!(h.bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(h.counts.len(), h.bounds.len() + 1);
        // Covers well past 30 minutes (1.8e9 µs).
        assert!(*h.bounds.last().unwrap() > 1_800_000_000);
    }

    #[test]
    fn quantiles_bracket_observations() {
        let h = LatencyHistogram::new();
        for micros in [100u64, 200, 300, 400, 1000] {
            h.record(micros);
        }
        assert_eq!(h.total(), 5);
        let p50 = h.quantile(0.5).unwrap();
        // Within one bucket ratio (~19%) of the true median (300).
        assert!((250.0..=380.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= 1000.0, "p99 = {p99}");
        assert!(h.quantile(0.5).unwrap() <= h.quantile(0.99).unwrap());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn outliers_clamp_into_the_last_bucket() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.total(), 1);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn registry_snapshot_counts() {
        let m = MetricsRegistry::new();
        m.record_success(1_000);
        m.record_success(2_000);
        m.record_error(&sgq_common::SgqError::Timeout { limit_ms: 5 });
        m.record_error(&sgq_common::SgqError::Execution("x".into()));
        m.record_rejected();
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.completed, 2);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.errors, 1);
        assert_eq!(s.rejected, 1);
        assert!((s.mean_ms - 1.5).abs() < 1e-9);
        assert!(s.qps > 0.0);
        assert!(s.p50_ms > 0.0 && s.p50_ms <= s.p99_ms);
    }

    #[test]
    fn empty_registry_snapshot_reports_finite_zeroes() {
        // A snapshot before any query completes must not emit NaN/Inf
        // into the JSON writer: 0-sample means and percentiles report 0.0
        // (the writer debug-asserts on non-finite input, so rendering at
        // all proves the guards at the source).
        let m = MetricsRegistry::new();
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.completed, 0);
        assert_eq!(s.morsels_executed, 0);
        assert_eq!(s.parallel_queries, 0);
        assert_eq!(s.mean_ms, 0.0);
        assert_eq!(s.p50_ms, 0.0);
        assert_eq!(s.p95_ms, 0.0);
        assert_eq!(s.p99_ms, 0.0);
        assert!(s.qps.is_finite() && s.qps >= 0.0);
        let json = s.to_json();
        assert!(!json.contains("null") && !json.contains("NaN"), "{json}");
        assert!(json.contains("\"cache_hit_rate\": 0"), "{json}");
        assert!(json.contains("\"morsels_executed\": 0"), "{json}");
        assert!(json.contains("\"parallel_queries\": 0"), "{json}");
        // The human rendering is equally finite.
        let text = s.to_string();
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let m = MetricsRegistry::new();
        m.record_success(500);
        let json = m.snapshot(CacheStats::default()).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for key in ["\"qps\"", "\"p99_ms\"", "\"cache_hit_rate\""] {
            assert!(json.contains(key), "{json}");
        }
    }

    #[test]
    fn parallel_counters_track_morsel_batches() {
        let m = MetricsRegistry::new();
        m.record_parallel(0); // serial query: no counter movement
        m.record_parallel(8);
        m.record_parallel(3);
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.morsels_executed, 11);
        assert_eq!(s.parallel_queries, 2);
        let json = s.to_json();
        assert!(json.contains("\"morsels_executed\": 11"), "{json}");
        assert!(json.contains("\"parallel_queries\": 2"), "{json}");
        let text = s.to_string();
        assert!(text.contains("2 queries ran parallel sections"), "{text}");
    }

    #[test]
    fn per_layout_scan_counters_pin_text_and_json() {
        let m = MetricsRegistry::new();
        m.record_scans(LayoutKind::PerLabel, 0); // scan-free query: no movement
        m.record_scans(LayoutKind::Polymorphic, 4);
        m.record_scans(LayoutKind::Denormalized, 3);
        m.record_scans(LayoutKind::Denormalized, 2);
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.scans_by_layout, [0, 4, 5]);
        let json = s.to_json();
        assert!(
            json.contains(
                "\"scans_by_layout\": {\"per-label\": 0, \
                 \"polymorphic\": 4, \"denormalized\": 5}"
            ),
            "{json}"
        );
        let text = s.to_string();
        assert!(
            text.contains("scans: 0 per-label, 4 polymorphic, 5 denormalized"),
            "{text}"
        );
    }

    #[test]
    fn histogram_concurrent_recording_is_lossless() {
        // 8 threads hammer the histogram; every observation must land:
        // the total equals the recorded count exactly (no lost updates).
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        // Spread across buckets, deterministic per thread.
                        h.record(1 + (t * per_thread + i) % 5_000);
                    }
                })
            })
            .collect();
        for hd in handles {
            hd.join().unwrap();
        }
        assert_eq!(h.total(), threads * per_thread);
        // Quantiles are monotone in q over a dense grid.
        let grid: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let qs: Vec<f64> = grid.iter().map(|&q| h.quantile(q).unwrap()).collect();
        assert!(
            qs.windows(2).all(|w| w[0] <= w[1]),
            "quantiles not monotone: {qs:?}"
        );
        // And bracket the observed domain.
        assert!(qs[0] >= 1.0 && *qs.last().unwrap() <= 6_000.0, "{qs:?}");
    }

    #[test]
    fn bucket_edge_values_round_trip() {
        // A value sitting exactly on a bucket's (inclusive) upper bound
        // must be reported back as that same bound by the quantile.
        let bounds: Vec<u64> = LatencyHistogram::new().bounds;
        for &edge in bounds.iter().step_by(7) {
            let h = LatencyHistogram::new();
            h.record(edge);
            assert_eq!(h.total(), 1);
            assert_eq!(
                h.quantile(1.0),
                Some(edge as f64),
                "edge {edge} did not round-trip"
            );
            assert_eq!(h.quantile(0.001), Some(edge as f64));
        }
    }

    #[test]
    fn error_kinds_break_down_in_text_and_json() {
        let m = MetricsRegistry::new();
        m.record_error(&sgq_common::SgqError::Timeout { limit_ms: 5 });
        m.record_error(&sgq_common::SgqError::Busy { capacity: 4 });
        m.record_error(&sgq_common::SgqError::RowBudget {
            rows: 11,
            budget: 10,
        });
        m.record_error(&sgq_common::SgqError::RowBudget {
            rows: 21,
            budget: 20,
        });
        m.record_error(&sgq_common::SgqError::Execution("boom".into()));
        m.record_error(&sgq_common::SgqError::BudgetExceeded { used: 9, limit: 8 });
        m.record_error(&sgq_common::SgqError::Transient { site: "exec.scan" });
        m.record_error(&sgq_common::SgqError::Internal("bug".into()));
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.errors, 6);
        assert_eq!(s.errors_row_budget, 2);
        assert_eq!(s.errors_memory_budget, 1);
        assert_eq!(s.errors_transient, 1);
        assert_eq!(s.errors_other, 2, "Execution + Internal");
        let json = s.to_json();
        assert!(json.contains("\"errors_timeout\": 1"), "{json}");
        assert!(json.contains("\"errors_busy\": 1"), "{json}");
        assert!(json.contains("\"errors_row_budget\": 2"), "{json}");
        assert!(json.contains("\"errors_memory_budget\": 1"), "{json}");
        assert!(json.contains("\"errors_transient\": 1"), "{json}");
        assert!(json.contains("\"errors_other\": 2"), "{json}");
        let text = s.to_string();
        assert!(
            text.contains("6 errors (2 row-budget, 1 memory-budget, 1 transient, 2 other)"),
            "{text}"
        );
    }

    #[test]
    fn robustness_counters_pin_text_and_json() {
        let m = MetricsRegistry::new();
        // The robustness line only renders when something happened.
        let quiet = m.snapshot(CacheStats::default());
        assert!(!quiet.to_string().contains("robustness"), "{quiet}");
        m.record_worker_panic();
        m.record_degraded_admission();
        m.record_degraded_admission();
        m.record_pressure_replan();
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.degraded_admissions, 2);
        assert_eq!(s.pressure_replans, 1);
        let json = s.to_json();
        assert!(json.contains("\"worker_panics\": 1"), "{json}");
        assert!(json.contains("\"degraded_admissions\": 2"), "{json}");
        assert!(json.contains("\"pressure_replans\": 1"), "{json}");
        let text = s.to_string();
        assert!(
            text.contains(
                "robustness: 1 worker panics contained, 2 degraded admissions, \
                 1 pressure re-prepares"
            ),
            "{text}"
        );
    }

    #[test]
    fn op_profiles_merge_into_snapshot_text_and_json() {
        let m = MetricsRegistry::new();
        m.record_ops(&[
            sgq_obs::OpSpan {
                node: 0,
                kind: "HashJoin",
                start_us: 0,
                dur_us: 120,
                self_us: 100,
                est_rows: 8.0,
                rows: 16,
            },
            sgq_obs::OpSpan {
                node: 1,
                kind: "EdgeScan",
                start_us: 0,
                dur_us: 20,
                self_us: 20,
                est_rows: 4.0,
                rows: 4,
            },
        ]);
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.op_profiles.len(), 2);
        assert_eq!(s.op_profiles[0].kind, "HashJoin", "self-time order");
        let json = s.to_json();
        assert!(
            json.contains(
                "\"op_profiles\": [{\"kind\": \"HashJoin\", \"evals\": 1, \
                 \"rows\": 16, \"self_us\": 100}"
            ),
            "{json}"
        );
        let text = s.to_string();
        assert!(
            text.contains("operators (self time): HashJoin 0.100 ms / 1 evals / 16 rows"),
            "{text}"
        );
        // An empty registry renders no operator section at all.
        let empty = MetricsRegistry::new().snapshot(CacheStats::default());
        assert!(!empty.to_string().contains("operators"), "{empty}");
        assert!(empty.to_json().contains("\"op_profiles\": []"));
    }

    #[test]
    fn display_is_human_readable() {
        let m = MetricsRegistry::new();
        m.record_success(1_000);
        let text = m.snapshot(CacheStats::default()).to_string();
        assert!(text.contains("qps"), "{text}");
        assert!(text.contains("plan cache"), "{text}");
    }
}
