//! A `std::thread` worker pool with a bounded job queue.
//!
//! The serving layer's execution substrate: a fixed set of worker
//! threads drains a bounded FIFO of jobs. The bound is the admission
//! control — when the queue is full, [`WorkerPool::try_submit`] fails
//! *immediately* with [`SgqError::Busy`] instead of letting latency grow
//! without bound (callers see back-pressure, not a slow service).
//!
//! Shutdown is graceful: [`WorkerPool::shutdown`] stops admitting new
//! jobs, lets the workers drain everything already queued (each queued
//! job carries a response channel someone is waiting on), and joins the
//! threads. Dropping the pool shuts it down the same way.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use sgq_common::{Result, SgqError};

/// A unit of work: a boxed closure run on one worker thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when a job is enqueued or shutdown begins.
    available: Condvar,
    capacity: usize,
    /// Panics caught (and contained) by worker threads.
    panics: AtomicU64,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Queue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A fixed-size pool of worker threads over a bounded job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.worker_count)
            .field("capacity", &self.shared.capacity)
            .field("queued", &self.queue_len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` threads over a queue bounded at `queue_capacity`
    /// (both clamped to at least 1).
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        let worker_count = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            capacity: queue_capacity.max(1),
            panics: AtomicU64::new(0),
        });
        let handles = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sgq-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            handles: Mutex::new(handles),
            worker_count,
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// The admission bound.
    pub fn queue_capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Jobs currently queued (not yet picked up by a worker).
    pub fn queue_len(&self) -> usize {
        self.shared.lock().jobs.len()
    }

    /// Enqueues a job, or rejects it right away: [`SgqError::Busy`] when
    /// the queue is at capacity, an execution error after shutdown.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<()> {
        self.try_submit_capped(self.shared.capacity, job)
    }

    /// Like [`WorkerPool::try_submit`] but admitting only while the
    /// queue is shorter than `min(cap, capacity)` — the degradation
    /// hook: under memory pressure the service shrinks the *effective*
    /// queue without reconfiguring the pool. `Busy` reports the
    /// effective bound the caller actually hit.
    pub fn try_submit_capped(&self, cap: usize, job: impl FnOnce() + Send + 'static) -> Result<()> {
        let effective = cap.clamp(1, self.shared.capacity);
        {
            let mut q = self.shared.lock();
            if q.shutdown {
                return Err(SgqError::Execution("worker pool is shut down".into()));
            }
            if q.jobs.len() >= effective {
                return Err(SgqError::Busy {
                    capacity: effective,
                });
            }
            q.jobs.push_back(Box::new(job));
        }
        self.shared.available.notify_one();
        Ok(())
    }

    /// Panics caught by worker threads since the pool started. Every
    /// count is a contained failure: the worker survived and kept
    /// draining the queue.
    pub fn panic_count(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stops admission, drains the queued jobs, joins
    /// every worker. Idempotent; later [`WorkerPool::try_submit`] calls
    /// fail.
    pub fn shutdown(&self) {
        self.shared.lock().shutdown = true;
        self.shared.available.notify_all();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut self.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.lock();
            loop {
                // Draining has priority over the shutdown flag, so jobs
                // admitted before shutdown still run to completion.
                if let Some(j) = q.jobs.pop_front() {
                    break Some(j);
                }
                if q.shutdown {
                    break None;
                }
                q = shared.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            Some(j) => {
                // A panicking job must not take the worker down with it:
                // the thread would silently stop draining and every
                // later submission would queue forever. The service's
                // jobs catch their own panics and reply with a
                // structured `SgqError::Internal`; this backstop covers
                // a panic escaping the job wrapper itself (the response
                // sender is dropped by the unwind, so the waiting client
                // sees a disconnect error, not a hang) and counts it.
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(j)).is_err() {
                    shared.panics.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn jobs_run_on_workers() {
        let pool = WorkerPool::new(2, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let c = Arc::clone(&counter);
            pool.try_submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        let pool = WorkerPool::new(1, 1);
        // Block the single worker on a gate so the queue state is
        // deterministic: one running job, one queued job, then rejection.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (running_tx, running_rx) = mpsc::channel::<()>();
        pool.try_submit(move || {
            running_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
        running_rx.recv().unwrap(); // worker is now blocked inside the job
        pool.try_submit(|| {}).unwrap(); // fills the queue slot
        let err = pool.try_submit(|| {}).unwrap_err();
        assert!(err.is_busy(), "expected Busy, got {err}");
        gate_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(1, 16);
        let counter = Arc::new(AtomicUsize::new(0));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (running_tx, running_rx) = mpsc::channel::<()>();
        pool.try_submit(move || {
            running_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
        running_rx.recv().unwrap();
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.try_submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        // Unblock, then shut down: all ten queued jobs must still run.
        gate_tx.send(()).unwrap();
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let pool = WorkerPool::new(1, 1);
        pool.shutdown();
        let err = pool.try_submit(|| {}).unwrap_err();
        assert!(matches!(err, SgqError::Execution(_)), "got {err}");
        // Idempotent.
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, 8);
        assert_eq!(pool.panic_count(), 0);
        pool.try_submit(|| panic!("job panic must be contained"))
            .unwrap();
        // The single worker must survive and run the next job.
        let (tx, rx) = mpsc::channel();
        pool.try_submit(move || tx.send(42).unwrap()).unwrap();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)),
            Ok(42),
            "worker died on a panicking job"
        );
        pool.shutdown();
        assert_eq!(pool.panic_count(), 1, "the contained panic is counted");
    }

    #[test]
    fn panicking_job_drops_its_sender_instead_of_hanging() {
        // The regression for the swallowed-panic bug: a caller waiting
        // on a panicked job's response channel must get a prompt
        // disconnect, never a hang.
        let pool = WorkerPool::new(1, 8);
        let (tx, rx) = mpsc::channel::<i32>();
        pool.try_submit(move || {
            let _keep = tx; // dropped by the unwind
            panic!("boom");
        })
        .unwrap();
        let err = rx.recv_timeout(std::time::Duration::from_secs(10));
        assert!(
            matches!(err, Err(mpsc::RecvTimeoutError::Disconnected)),
            "expected disconnect, got {err:?}"
        );
        // And the worker still serves the next job.
        let (tx2, rx2) = mpsc::channel();
        pool.try_submit(move || tx2.send(7).unwrap()).unwrap();
        assert_eq!(rx2.recv_timeout(std::time::Duration::from_secs(10)), Ok(7));
        // Checked only after job 2 ran: the sender drops mid-unwind,
        // strictly before the same worker counts the panic and moves on.
        assert_eq!(pool.panic_count(), 1);
        pool.shutdown();
    }

    #[test]
    fn capped_submit_shrinks_the_effective_queue() {
        let pool = WorkerPool::new(1, 8);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (running_tx, running_rx) = mpsc::channel::<()>();
        pool.try_submit(move || {
            running_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        })
        .unwrap();
        running_rx.recv().unwrap(); // worker blocked; queue empty
        pool.try_submit_capped(2, || {}).unwrap();
        pool.try_submit_capped(2, || {}).unwrap();
        // Effective bound of 2 trips even though the real capacity is 8,
        // and Busy reports the bound the caller actually hit.
        let err = pool.try_submit_capped(2, || {}).unwrap_err();
        assert!(matches!(err, SgqError::Busy { capacity: 2 }), "got {err}");
        // The full-capacity path still admits.
        pool.try_submit(|| {}).unwrap();
        // A cap above capacity clamps down to the configured bound.
        for _ in 0..5 {
            let _ = pool.try_submit_capped(100, || {});
        }
        let err = pool.try_submit_capped(100, || {}).unwrap_err();
        assert!(matches!(err, SgqError::Busy { capacity: 8 }), "got {err}");
        gate_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn jobs_run_in_parallel() {
        let pool = WorkerPool::new(4, 8);
        // Four jobs that can only finish when all four are running at
        // once: a rendezvous proves genuine parallelism.
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let (done_tx, done_rx) = mpsc::channel();
        for _ in 0..4 {
            let b = Arc::clone(&barrier);
            let tx = done_tx.clone();
            pool.try_submit(move || {
                b.wait();
                tx.send(()).unwrap();
            })
            .unwrap();
        }
        for _ in 0..4 {
            done_rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("all four jobs rendezvous");
        }
        pool.shutdown();
    }
}
