//! # schema-graph-query
//!
//! A reproduction of *"Schema-Based Query Optimisation for Graph
//! Databases"* (Sharma, Genevès, Gesbert, Layaïda): a type-inference
//! mechanism that enriches recursive graph queries (UCQT over Tarski's
//! algebra) with node-label information derived from a graph schema,
//! eliminating transitive closures when the schema's label graph is
//! acyclic and inserting semi-join label filters otherwise — plus the two
//! execution backends (a property-graph engine and a recursive relational
//! algebra engine), dataset generators and the full experiment harness.
//!
//! ## Quick start
//!
//! ```
//! use schema_graph_query::prelude::*;
//!
//! // The paper's running example: Fig. 1 schema, Fig. 2 database.
//! let schema = schema_graph_query::graph::schema::fig1_yago_schema();
//! let db = schema_graph_query::graph::database::fig2_yago_database();
//!
//! // ϕ4 = livesIn/isLocatedIn+/dealsWith+ (Example 10).
//! let phi = parse_path("livesIn/isLocatedIn+/dealsWith+", &schema).unwrap();
//!
//! // Rewrite it with schema information (Example 13).
//! let rewritten = rewrite_path(&schema, &phi, RewriteOptions::default());
//! let query = match &rewritten.outcome {
//!     RewriteOutcome::Enriched(q) => q.clone(),
//!     _ => unreachable!("ϕ4 is enrichable"),
//! };
//!
//! // Baseline and rewritten queries agree on every conforming database.
//! let engine = GraphEngine::new(&db);
//! let baseline = engine.eval_path(&phi).unwrap();
//! let enriched: Vec<_> = engine
//!     .run_ucqt(&query)
//!     .unwrap()
//!     .into_iter()
//!     .map(|row| (row[0], row[1]))
//!     .collect();
//! assert_eq!(baseline, enriched);
//! ```
//!
//! See `DESIGN.md` for the crate graph, the interned-symbol
//! (`SymbolTable`) ownership story and the dependency policy. The
//! paper-vs-measured comparison of every table and figure is regenerated
//! on demand by `cargo run --release --bin sgq-experiments`.

pub use sgq_algebra as algebra;
pub use sgq_common as common;
pub use sgq_core as core;
pub use sgq_datasets as datasets;
pub use sgq_engine as engine;
pub use sgq_graph as graph;
pub use sgq_harness as harness;
pub use sgq_obs as obs;
pub use sgq_query as query;
pub use sgq_ra as ra;
pub use sgq_service as service;
pub use sgq_translate as translate;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use sgq_algebra::ast::PathExpr;
    pub use sgq_algebra::parser::parse_path;
    pub use sgq_core::pipeline::{rewrite_path, rewrite_ucqt, RewriteOptions, RewriteOutcome};
    pub use sgq_core::RedundancyRule;
    pub use sgq_engine::GraphEngine;
    pub use sgq_graph::{DataType, GraphDatabase, GraphSchema, Value};
    pub use sgq_query::cqt::{Cqt, QueryKind, Ucqt};
    pub use sgq_ra::{execute, execute_plan, plan, ExecContext, PhysPlan, RelStore};
    pub use sgq_service::{QueryOptions, Service, ServiceConfig, Session};
}
