//! Cross-backend integration: for every catalog query (the 30 LDBC
//! queries of Tab. 4 and the 18 YAGO queries) on small instances, the
//! graph engine, the relational engine (optimised and unoptimised) and
//! the reference semantics must all agree — for both the baseline and the
//! schema-rewritten query.

use schema_graph_query::prelude::*;
use sgq_algebra::eval::eval_path;
use sgq_datasets::ldbc::{self, LdbcConfig};
use sgq_datasets::yago::{self, YagoConfig};
use sgq_ra::RelStore;
use sgq_translate::ucqt2rra::{ucqt_to_term, NameGen};

fn pairs_from_rows(rows: Vec<Vec<sgq_common::NodeId>>) -> Vec<(u32, u32)> {
    rows.into_iter().map(|r| (r[0].raw(), r[1].raw())).collect()
}

fn relational_pairs(store: &RelStore, query: &Ucqt, optimize: bool) -> Vec<(u32, u32)> {
    let mut names = NameGen::new(&store.symbols);
    let term = ucqt_to_term(query, &mut names).expect("translates");
    let term = if optimize {
        sgq_ra::optimize::optimize(&term, store)
    } else {
        term
    };
    let mut ctx = ExecContext::new();
    let rel = sgq_ra::execute(&term, store, &mut ctx).expect("executes");
    let (c0, c1) = (store.symbols.col("v0"), store.symbols.col("v1"));
    let rel = rel.project(&[c0, c1]);
    rel.rows().map(|r| (r[0], r[1])).collect()
}

fn check_catalog(schema: &GraphSchema, db: &GraphDatabase, queries: &[sgq_datasets::CatalogQuery]) {
    let engine = GraphEngine::new(db);
    let store = RelStore::load(db);
    for q in queries {
        let reference: Vec<(u32, u32)> = eval_path(db, &q.expr)
            .into_iter()
            .map(|(a, b)| (a.raw(), b.raw()))
            .collect();

        // Baseline on all three engines.
        let baseline = Ucqt::path_query(q.expr.clone());
        let graph = pairs_from_rows(engine.run_ucqt(&baseline).expect("graph runs"));
        assert_eq!(
            graph, reference,
            "{}: graph backend diverged (baseline)",
            q.name
        );
        let rel = relational_pairs(&store, &baseline, true);
        assert_eq!(
            rel, reference,
            "{}: relational backend diverged (baseline)",
            q.name
        );
        let rel_unopt = relational_pairs(&store, &baseline, false);
        assert_eq!(
            rel_unopt, reference,
            "{}: unoptimised relational diverged",
            q.name
        );

        // Schema-rewritten on both engines.
        let rewritten = rewrite_path(schema, &q.expr, RewriteOptions::default());
        match &rewritten.outcome {
            RewriteOutcome::Empty => {
                assert!(reference.is_empty(), "{}: rewrite claims empty", q.name)
            }
            RewriteOutcome::Enriched(query) | RewriteOutcome::Reverted(query) => {
                let graph = pairs_from_rows(engine.run_ucqt(query).expect("graph runs"));
                assert_eq!(
                    graph, reference,
                    "{}: graph backend diverged (schema)",
                    q.name
                );
                let rel = relational_pairs(&store, query, true);
                assert_eq!(
                    rel, reference,
                    "{}: relational backend diverged (schema)",
                    q.name
                );
            }
        }
    }
}

#[test]
fn ldbc_catalog_agrees_across_backends() {
    let (schema, db) = ldbc::generate(LdbcConfig {
        scale_factor: 0.06,
        seed: 7,
        persons_per_sf: 500,
    });
    let queries = ldbc::queries(&schema).expect("catalog parses");
    check_catalog(&schema, &db, &queries);
}

#[test]
fn yago_catalog_agrees_across_backends() {
    let (schema, db) = yago::generate(YagoConfig::tiny());
    let queries = yago::queries(&schema).expect("catalog parses");
    check_catalog(&schema, &db, &queries);
}

#[test]
fn rewrites_agree_under_every_redundancy_rule() {
    let (schema, db) = yago::generate(YagoConfig::tiny());
    let engine = GraphEngine::new(&db);
    let queries = yago::queries(&schema).expect("catalog parses");
    for q in &queries {
        let reference = eval_path(&db, &q.expr);
        for rule in [
            RedundancyRule::BothSides,
            RedundancyRule::EitherSide,
            RedundancyRule::Never,
        ] {
            let opts = RewriteOptions {
                redundancy: rule,
                ..Default::default()
            };
            let rewritten = rewrite_path(&schema, &q.expr, opts);
            if let Some(query) = rewritten.outcome.query() {
                let rows = engine.run_ucqt(query).expect("engine runs");
                let pairs: Vec<_> = rows.into_iter().map(|r| (r[0], r[1])).collect();
                assert_eq!(pairs, reference, "{} diverged under {rule:?}", q.name);
            }
        }
    }
}
