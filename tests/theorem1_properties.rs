//! Theorem 1 as an executable property: for a random schema, a random
//! database conforming to it, and a random path expression, the
//! schema-enriched query `RS(ϕ)` returns exactly `JϕKD` — under every
//! redundancy rule and every ablation switch.
//!
//! Randomness comes from the in-repo seeded [`Rng`]; every case prints
//! its seed on failure so it replays deterministically.

use schema_graph_query::prelude::*;
use sgq_algebra::eval::eval_path;
use sgq_common::{NodeId, Rng};
use sgq_engine::GraphEngine;

const CASES: u64 = 48;

/// Spreads consecutive case indexes across the u64 seed space.
fn spread(i: u64) -> u64 {
    Rng::seed_from_u64(i).gen_u64()
}

/// Builds a random schema from a seed: up to 5 node labels, up to 8 schema
/// edges over up to 4 edge labels (parallel triples allowed — that is what
/// exercises the inference).
fn random_schema(seed: u64) -> GraphSchema {
    let mut rng = Rng::seed_from_u64(seed);
    let node_labels = ["A", "B", "C", "D", "E"];
    let edge_labels = ["r", "s", "t", "u"];
    let n_nodes = rng.gen_range(2..6);
    let n_edges = rng.gen_range(2..9);
    let mut b = GraphSchema::builder();
    for l in node_labels.iter().take(n_nodes) {
        b.node(l, &[]);
    }
    for _ in 0..n_edges {
        let src = node_labels[rng.gen_range(0..n_nodes)];
        let tgt = node_labels[rng.gen_range(0..n_nodes)];
        let le = edge_labels[rng.gen_range(0..edge_labels.len())];
        b.edge(src, le, tgt);
    }
    b.build().expect("random schema is well-formed")
}

/// Builds a random database conforming to `schema`.
fn random_database(schema: &GraphSchema, seed: u64) -> GraphDatabase {
    let mut rng = Rng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut b = GraphDatabase::builder(schema);
    let n_nodes = rng.gen_range(6..30);
    let labels: Vec<String> = schema
        .node_labels()
        .map(|l| schema.node_label_name(l).to_string())
        .collect();
    let nodes: Vec<(NodeId, String)> = (0..n_nodes)
        .map(|_| {
            let label = labels[rng.gen_range(0..labels.len())].clone();
            (b.node(&label, &[]), label)
        })
        .collect();
    // For each schema triple, add random conforming edges.
    let triples: Vec<(String, String, String)> = schema
        .triples()
        .iter()
        .map(|t| {
            (
                schema.node_label_name(t.src).to_string(),
                schema.edge_label_name(t.label).to_string(),
                schema.node_label_name(t.tgt).to_string(),
            )
        })
        .collect();
    let n_edges = rng.gen_range(5..60);
    for _ in 0..n_edges {
        let (src_l, le, tgt_l) = &triples[rng.gen_range(0..triples.len())];
        let srcs: Vec<NodeId> = nodes
            .iter()
            .filter(|(_, l)| l == src_l)
            .map(|&(n, _)| n)
            .collect();
        let tgts: Vec<NodeId> = nodes
            .iter()
            .filter(|(_, l)| l == tgt_l)
            .map(|&(n, _)| n)
            .collect();
        if srcs.is_empty() || tgts.is_empty() {
            continue;
        }
        let s = srcs[rng.gen_range(0..srcs.len())];
        let t = tgts[rng.gen_range(0..tgts.len())];
        b.edge(s, le, t);
    }
    b.build().expect("random database is well-formed")
}

/// A seeded recursive random path expression over the schema's labels.
fn random_expr(schema: &GraphSchema, seed: u64, depth: usize) -> PathExpr {
    let labels: Vec<sgq_common::EdgeLabelId> = schema.edge_labels().collect();
    let mut rng = Rng::seed_from_u64(seed ^ 0xdead_beef);
    build_expr(&mut rng, &labels, depth)
}

fn build_expr(rng: &mut Rng, labels: &[sgq_common::EdgeLabelId], depth: usize) -> PathExpr {
    let leaf = depth == 0 || rng.gen_bool(0.3);
    if leaf {
        let le = labels[rng.gen_range(0..labels.len())];
        if rng.gen_bool(0.25) {
            PathExpr::Reverse(le)
        } else {
            PathExpr::Label(le)
        }
    } else {
        match rng.gen_range(0..7) {
            0 | 1 => PathExpr::concat(
                build_expr(rng, labels, depth - 1),
                build_expr(rng, labels, depth - 1),
            ),
            2 => PathExpr::union(
                build_expr(rng, labels, depth - 1),
                build_expr(rng, labels, depth - 1),
            ),
            3 => PathExpr::conj(
                build_expr(rng, labels, depth - 1),
                build_expr(rng, labels, depth - 1),
            ),
            4 => PathExpr::branch_r(
                build_expr(rng, labels, depth - 1),
                build_expr(rng, labels, depth - 1),
            ),
            5 => PathExpr::branch_l(
                build_expr(rng, labels, depth - 1),
                build_expr(rng, labels, depth - 1),
            ),
            _ => PathExpr::plus(build_expr(rng, labels, depth - 1)),
        }
    }
}

/// Evaluates a rewrite outcome on the graph engine and compares against
/// the reference semantics of the original expression.
fn check_equivalence(
    schema: &GraphSchema,
    db: &GraphDatabase,
    expr: &PathExpr,
    opts: RewriteOptions,
) {
    let reference = eval_path(db, expr);
    let rewritten = sgq_core::pipeline::rewrite_path(schema, expr, opts);
    let pairs: Vec<(NodeId, NodeId)> = match &rewritten.outcome {
        RewriteOutcome::Empty => Vec::new(),
        RewriteOutcome::Enriched(q) | RewriteOutcome::Reverted(q) => {
            let engine = GraphEngine::new(db);
            let rows = engine.run_ucqt(q).expect("engine runs");
            rows.into_iter().map(|r| (r[0], r[1])).collect()
        }
    };
    assert_eq!(
        &reference, &pairs,
        "RS(ϕ) diverged (opts {opts:?}) for ϕ = {expr:?}"
    );
}

#[test]
fn theorem1_default_options() {
    for i in 0..CASES {
        let seed = spread(i);
        let expr_seed = spread(i ^ 0xe59);
        let schema = random_schema(seed);
        let db = random_database(&schema, seed);
        let expr = random_expr(&schema, expr_seed, 3);
        check_equivalence(&schema, &db, &expr, RewriteOptions::default());
    }
}

#[test]
fn theorem1_all_redundancy_rules() {
    for i in 0..CASES {
        let seed = spread(i ^ 0x0dd);
        let schema = random_schema(seed);
        let db = random_database(&schema, seed);
        let expr = random_expr(&schema, seed.rotate_left(17), 3);
        for rule in [
            RedundancyRule::BothSides,
            RedundancyRule::EitherSide,
            RedundancyRule::Never,
        ] {
            let opts = RewriteOptions {
                redundancy: rule,
                ..Default::default()
            };
            check_equivalence(&schema, &db, &expr, opts);
        }
    }
}

#[test]
fn theorem1_ablations() {
    for i in 0..CASES {
        let seed = spread(i ^ 0xab1);
        let schema = random_schema(seed);
        let db = random_database(&schema, seed);
        let expr = random_expr(&schema, seed.rotate_left(31), 3);
        for (tc, ann, simp) in [
            (false, true, true),
            (true, false, true),
            (true, true, false),
            (false, false, false),
        ] {
            let opts = RewriteOptions {
                tc_elimination: tc,
                annotations: ann,
                simplify: simp,
                ..Default::default()
            };
            check_equivalence(&schema, &db, &expr, opts);
        }
    }
}

#[test]
fn simplification_preserves_semantics() {
    for i in 0..CASES {
        let seed = spread(i ^ 0x51b);
        let schema = random_schema(seed);
        let db = random_database(&schema, seed);
        let expr = random_expr(&schema, seed.rotate_left(43), 4);
        let simplified = sgq_core::simplify(&expr);
        assert_eq!(
            eval_path(&db, &expr),
            eval_path(&db, &simplified),
            "R1-R5 changed the semantics of {expr:?}"
        );
    }
}

#[test]
fn generated_databases_conform() {
    for i in 0..CASES {
        let seed = spread(i ^ 0xc0f);
        let schema = random_schema(seed);
        let db = random_database(&schema, seed);
        let report = sgq_graph::check_consistency(&schema, &db);
        assert!(report.is_consistent(), "{:?}", report.violations);
    }
}
