//! End-to-end checks of the paper's worked examples, exercised through
//! the public facade (the per-crate unit tests check the same facts at a
//! lower level).

use schema_graph_query::prelude::*;
use sgq_core::infer::{infer_triples, InferOptions};
use sgq_core::RedundancyRule;
use sgq_graph::database::fig2_yago_database;
use sgq_graph::schema::fig1_yago_schema;

#[test]
fn example_3_consistency() {
    let schema = fig1_yago_schema();
    let db = fig2_yago_database();
    assert!(sgq_graph::check_consistency(&schema, &db).is_consistent());
}

#[test]
fn example_6_branch_query() {
    // ϕ1 = [owns]([isMarriedTo]livesIn) returns {(n2, n4)}.
    let schema = fig1_yago_schema();
    let db = fig2_yago_database();
    let phi = parse_path("[owns]([isMarriedTo]livesIn)", &schema).unwrap();
    let engine = GraphEngine::new(&db);
    let result = engine.eval_path(&phi).unwrap();
    assert_eq!(result.len(), 1);
    // n2 is the second inserted node (id 1), n4 the fourth (id 3)
    assert_eq!(result[0].0.raw(), 1);
    assert_eq!(result[0].1.raw(), 3);
}

#[test]
fn example_9_basic_triples() {
    let schema = fig1_yago_schema();
    assert_eq!(schema.triples().len(), 7, "seven basic triples");
}

#[test]
fn table_1_inference_counts() {
    let schema = fig1_yago_schema();
    let count = |s: &str| {
        let e = parse_path(s, &schema).unwrap();
        infer_triples(&schema, &e, InferOptions::default())
            .unwrap()
            .len()
    };
    assert_eq!(count("livesIn"), 1);
    assert_eq!(count("isLocatedIn+"), 6);
    assert_eq!(count("dealsWith+"), 1);
    assert_eq!(count("livesIn/isLocatedIn+"), 2);
    assert_eq!(count("livesIn/isLocatedIn+/dealsWith+"), 1);
}

#[test]
fn example_13_full_pipeline() {
    // RS(ϕ4): two relations sharing γ with η(γ) ∈ {REGION}, and the
    // isLocatedIn closure gone.
    let schema = fig1_yago_schema();
    let phi = parse_path("livesIn/isLocatedIn+/dealsWith+", &schema).unwrap();
    let opts = RewriteOptions {
        redundancy: RedundancyRule::EitherSide,
        ..Default::default()
    };
    let r = rewrite_path(&schema, &phi, opts);
    let q = match &r.outcome {
        RewriteOutcome::Enriched(q) => q,
        other => panic!("expected enrichment, got {other:?}"),
    };
    assert_eq!(q.disjuncts.len(), 1);
    let c = &q.disjuncts[0];
    assert_eq!(c.relations.len(), 2);
    assert_eq!(c.atoms.len(), 1);
    assert_eq!(
        c.atoms[0].labels,
        vec![schema.node_label("REGION").unwrap()]
    );
    assert_eq!(
        c.relations[0].path.strip(),
        parse_path("livesIn/isLocatedIn", &schema).unwrap()
    );
    assert_eq!(
        c.relations[1].path.strip(),
        parse_path("isLocatedIn/dealsWith+", &schema).unwrap()
    );
}

#[test]
fn figure_7_simplification() {
    let schema = fig1_yago_schema();
    let phi_red = parse_path(
        "(((owns[isMarriedTo+/livesIn/dealsWith+])/(isLocatedIn+)+)+)+",
        &schema,
    )
    .unwrap();
    let simplified = sgq_core::simplify(&phi_red);
    // Our sound ϕopt (the paper's Fig. 7 additionally drops the
    // isMarriedTo+ base closure; see DESIGN.md):
    let expected = parse_path(
        "(owns[isMarriedTo+[livesIn[dealsWith]]]/isLocatedIn+)+",
        &schema,
    )
    .unwrap();
    assert_eq!(simplified, expected);
}

#[test]
fn figures_15_16_translations() {
    // Q1/Q2 on the LDBC schema: the enriched SQL pre-filters isLocatedIn
    // and the enriched Cypher carries the node label.
    let report = schema_graph_query::harness::experiments::fig15_16();
    assert!(
        report.contains("WHERE EXISTS"),
        "semi-join in the SQL:\n{report}"
    );
    assert!(
        report.contains(":Company)"),
        "label in the Cypher:\n{report}"
    );
    assert!(report.contains("-[:knows]->"), "{report}");
}

#[test]
fn figure_17_plan_costs() {
    let report = schema_graph_query::harness::experiments::fig17(0.1);
    assert!(report.contains("cost ="), "{report}");
    assert!(report.contains("actual ="), "{report}");
    // The schema-enrichment narrative survives the index-join planner:
    // the Organisation-side restriction now shows up either as a semi-
    // join operator or as an endpoint filter on a CSR index join.
    assert!(
        report.contains("Semi Join") || report.contains("∈ Company"),
        "{report}"
    );
}

#[test]
fn query_c1_example_5() {
    // C1 = {Y | ∃(Z,M) (Y, livesIn/isLocatedIn+, M) ∧ (Y, owns, Z)}
    // finds John only on the Fig. 2 database.
    use sgq_common::VarId;
    use sgq_query::cqt::{Cqt, Relation};
    let schema = fig1_yago_schema();
    let db = fig2_yago_database();
    let (y, z, m) = (VarId::new(0), VarId::new(1), VarId::new(2));
    let c1 = Cqt {
        head: vec![y],
        atoms: vec![],
        relations: vec![
            Relation::plain(y, parse_path("livesIn/isLocatedIn+", &schema).unwrap(), m),
            Relation::plain(y, parse_path("owns", &schema).unwrap(), z),
        ],
    };
    let engine = GraphEngine::new(&db);
    let rows = engine.run_ucqt(&Ucqt::single(c1)).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0].raw(), 1, "John is node n2 (id 1)");
}
