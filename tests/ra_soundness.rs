//! Soundness of the RA optimiser, the physical plan layer, and
//! canonicity of the relation algebra.
//!
//! Randomized properties over the Fig. 2 database:
//!
//! 1. `execute(optimize(t)) == execute(t)` for random `RaTerm`s built
//!    from random path expressions (joins, semi-joins, unions, fixpoints)
//!    plus random node-label semi-join filters — the shapes the
//!    translator and the µ-RA rewriter actually produce.
//! 2. `execute_plan(plan(optimize(t))) == execute(t)` — explicit
//!    pre-lowering (the harness path) agrees with term-level execution,
//!    with and without fixpoint build-side caching.
//! 3. `execute_plan(index-enabled) == execute_plan(index-disabled) ==
//!    execute(t)` — planning against the store's CSR adjacency indexes
//!    never changes results.
//!    3b. `execute_plan(layout)` is bit-identical to the reference
//!    executor for every storage layout (per-label, polymorphic,
//!    denormalised), serially and under morsel parallelism.
//! 4. Every `Relation` operator returns a canonical (strictly sorted,
//!    deduplicated) result, including the operators that skip the re-sort
//!    because they provably preserve order.
//!
//! Plus directed tests pinning the physical operator selection rules
//! (index vs merge vs hash joins, label-filtered index scans, index
//! joins inside fixpoint steps, fused filtered scans, cached build
//! sides) and the zero-copy invariants (cloning or scanning a base
//! table shares the store's row buffer — Arc pointer equality).

use sgq_algebra::ast::PathExpr;
use sgq_common::{ColId, Rng};
use sgq_graph::database::fig2_yago_database;
use sgq_ra::exec::{execute, execute_plan, ExecContext};
use sgq_ra::optimize::optimize;
use sgq_ra::term::{closure_fixpoint, RaTerm};
use sgq_ra::{plan, PhysOp, RelStore, Relation};
use sgq_translate::ucqt2rra::{path_to_term, NameGen};

/// A random path expression over the Fig. 2 database's edge labels.
fn random_expr(db: &sgq_graph::GraphDatabase, rng: &mut Rng, depth: usize) -> PathExpr {
    let le = sgq_common::EdgeLabelId::new(rng.gen_range(0..db.edge_label_count()) as u32);
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.25) {
            PathExpr::Reverse(le)
        } else {
            PathExpr::Label(le)
        };
    }
    match rng.gen_range(0..7) {
        0 | 1 => PathExpr::concat(
            random_expr(db, rng, depth - 1),
            random_expr(db, rng, depth - 1),
        ),
        2 => PathExpr::union(
            random_expr(db, rng, depth - 1),
            random_expr(db, rng, depth - 1),
        ),
        3 => PathExpr::conj(
            random_expr(db, rng, depth - 1),
            random_expr(db, rng, depth - 1),
        ),
        4 => PathExpr::branch_r(
            random_expr(db, rng, depth - 1),
            random_expr(db, rng, depth - 1),
        ),
        5 => PathExpr::branch_l(
            random_expr(db, rng, depth - 1),
            random_expr(db, rng, depth - 1),
        ),
        _ => PathExpr::plus(random_expr(db, rng, depth - 1)),
    }
}

/// Optionally wraps `term` in node-label semi-join filters on its output
/// columns — the shape the schema rewrite produces, and the trigger for
/// the optimiser's pushdown rules (including pushdown into fixpoints).
fn random_filters(
    db: &sgq_graph::GraphDatabase,
    rng: &mut Rng,
    term: RaTerm,
    cols: &[ColId],
) -> RaTerm {
    let mut term = term;
    for &col in cols {
        if rng.gen_bool(0.4) {
            let label =
                sgq_common::NodeLabelId::new(rng.gen_range(0..db.node_label_count()) as u32);
            term = RaTerm::semijoin(
                term,
                RaTerm::NodeScan {
                    labels: vec![label],
                    col,
                },
            );
        }
    }
    term
}

#[test]
fn optimize_preserves_execution_results() {
    let db = fig2_yago_database();
    let store = RelStore::load(&db);
    let (v0, v1) = (store.symbols.col("v0"), store.symbols.col("v1"));
    for seed in 0..96u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let expr = random_expr(&db, &mut rng, 3);
        let mut names = NameGen::new(&store.symbols);
        let term = path_to_term(&expr, v0, v1, &mut names);
        let term = random_filters(&db, &mut rng, term, &[v0, v1]);
        let opt = optimize(&term, &store);

        let mut ctx = ExecContext::new();
        let plain = execute(&term, &store, &mut ctx).expect("plain term executes");
        let mut ctx = ExecContext::new();
        let optimized = execute(&opt, &store, &mut ctx).expect("optimized term executes");
        // Join reordering may permute columns; compare on the query head.
        assert_eq!(
            plain.project(&[v0, v1]),
            optimized.project(&[v0, v1]),
            "optimize changed semantics (seed {seed}) for {expr:?}"
        );
    }
}

#[test]
fn physical_plans_match_term_execution() {
    // execute_plan(plan(optimize(t))) == execute(t), with the cached and
    // uncached fixpoint paths agreeing too.
    let db = fig2_yago_database();
    let store = RelStore::load(&db);
    let (v0, v1) = (store.symbols.col("v0"), store.symbols.col("v1"));
    for seed in 0..96u64 {
        let mut rng = Rng::seed_from_u64(seed ^ 0x9a7);
        let expr = random_expr(&db, &mut rng, 3);
        let mut names = NameGen::new(&store.symbols);
        let term = path_to_term(&expr, v0, v1, &mut names);
        let term = random_filters(&db, &mut rng, term, &[v0, v1]);

        let mut ctx = ExecContext::new();
        let reference = execute(&term, &store, &mut ctx).expect("term executes");

        let opt = optimize(&term, &store);
        let p = plan(&opt, &store).expect("optimized term lowers");
        let mut ctx = ExecContext::new();
        let planned = execute_plan(&p, &store, &mut ctx).expect("plan executes");
        let mut ctx = ExecContext::new();
        ctx.no_fixpoint_cache = true;
        let uncached = execute_plan(&p, &store, &mut ctx).expect("plan executes uncached");

        // Join reordering may permute columns; compare on the query head.
        let head = [v0, v1];
        assert_eq!(
            reference.project(&head),
            planned.project(&head),
            "plan changed semantics (seed {seed}) for {expr:?}"
        );
        assert_eq!(
            planned, uncached,
            "fixpoint caching changed results (seed {seed}) for {expr:?}"
        );
    }
}

#[test]
fn planner_selects_merge_join_for_aligned_inputs() {
    let db = fig2_yago_database();
    let mut store = RelStore::load(&db);
    // Ablate index joins: this test pins the scan-based strategies.
    store.index_joins = false;
    let s = &store.symbols;
    let scan = |label: &str, src, tgt| RaTerm::EdgeScan {
        label: db.edge_label_id(label).unwrap(),
        src: s.col(src),
        tgt: s.col(tgt),
    };
    // Shared x leads both schemas → merge join, identical results to the
    // generic hash join.
    let aligned = RaTerm::join(scan("isLocatedIn", "x", "y"), scan("owns", "x", "z"));
    let p = plan(&aligned, &store).unwrap();
    assert!(matches!(p.op, PhysOp::MergeJoin { .. }), "{p:?}");
    let mut ctx = ExecContext::new();
    let merged = execute_plan(&p, &store, &mut ctx).unwrap();
    let hashed = store
        .edge_table(db.edge_label_id("isLocatedIn").unwrap())
        .with_cols(vec![s.col("x"), s.col("y")])
        .join(
            &store
                .edge_table(db.edge_label_id("owns").unwrap())
                .with_cols(vec![s.col("x"), s.col("z")]),
        );
    assert_eq!(merged, hashed);

    // Shared y sits mid-schema on the left → hash join with the smaller
    // (owns, 1 row) side building.
    let misaligned = RaTerm::join(scan("owns", "x", "y"), scan("isLocatedIn", "y", "z"));
    let p = plan(&misaligned, &store).unwrap();
    match &p.op {
        PhysOp::HashJoin { build_left, .. } => assert!(build_left),
        other => panic!("expected hash join, got {other:?}"),
    }
}

#[test]
fn planner_fuses_semijoin_onto_scan() {
    let db = fig2_yago_database();
    let store = RelStore::load(&db);
    let s = &store.symbols;
    let t = RaTerm::semijoin(
        RaTerm::EdgeScan {
            label: db.edge_label_id("isLocatedIn").unwrap(),
            src: s.col("x"),
            tgt: s.col("y"),
        },
        RaTerm::NodeScan {
            labels: vec![db.node_label_id("CITY").unwrap()],
            col: s.col("y"),
        },
    );
    let p = plan(&t, &store).unwrap();
    match &p.op {
        PhysOp::FilteredEdgeScan { merge, .. } => {
            // y does not lead the scan schema: hashed key set.
            assert!(!merge);
        }
        other => panic!("expected fused filtered scan, got {other:?}"),
    }
    let mut ctx = ExecContext::new();
    let fused = execute_plan(&p, &store, &mut ctx).unwrap();
    let reference = store
        .edge_table(db.edge_label_id("isLocatedIn").unwrap())
        .with_cols(vec![s.col("x"), s.col("y")])
        .semijoin(
            &store
                .node_table(db.node_label_id("CITY").unwrap())
                .with_cols(vec![s.col("y")]),
        );
    assert_eq!(fused, reference);
}

#[test]
fn fixpoint_build_caching_reduces_work_with_identical_results() {
    let db = fig2_yago_database();
    let mut store = RelStore::load(&db);
    // Ablate index joins so the step actually hash-joins: with the CSR
    // the step builds nothing at all (pinned separately below).
    store.index_joins = false;
    let s = &store.symbols;
    let f = closure_fixpoint(
        s.recvar("X"),
        RaTerm::EdgeScan {
            label: db.edge_label_id("isLocatedIn").unwrap(),
            src: s.col("x"),
            tgt: s.col("y"),
        },
        s.col("x"),
        s.col("y"),
        s.col("m"),
    );
    let p = plan(&f, &store).unwrap();
    let mut cached = ExecContext::new();
    let r_cached = execute_plan(&p, &store, &mut cached).unwrap();
    let mut uncached = ExecContext::new();
    uncached.no_fixpoint_cache = true;
    let r_uncached = execute_plan(&p, &store, &mut uncached).unwrap();
    assert_eq!(r_cached, r_uncached);
    assert!(cached.fixpoint_rounds >= 2, "closure must iterate");
    assert!(
        cached.hash_builds < uncached.hash_builds,
        "caching must build fewer hash tables ({} !< {})",
        cached.hash_builds,
        uncached.hash_builds
    );
    assert!(
        cached.rows_materialized() <= uncached.rows_materialized(),
        "cached intermediates must not inflate materialisation"
    );
}

#[test]
fn index_joins_preserve_execution_results() {
    // The CSR index-join property: for random optimised terms,
    // `execute_plan(index-enabled) == execute_plan(index-disabled) ==
    // execute(term)` — planning against the adjacency indexes never
    // changes results, only how they are computed.
    let db = fig2_yago_database();
    let mut store = RelStore::load(&db);
    let (v0, v1) = (store.symbols.col("v0"), store.symbols.col("v1"));
    for seed in 0..96u64 {
        let mut rng = Rng::seed_from_u64(seed ^ 0x1d9);
        let expr = random_expr(&db, &mut rng, 3);
        let mut names = NameGen::new(&store.symbols);
        let term = path_to_term(&expr, v0, v1, &mut names);
        let term = random_filters(&db, &mut rng, term, &[v0, v1]);
        let opt = optimize(&term, &store);

        store.index_joins = true;
        let p_index = plan(&opt, &store).expect("plans with indexes");
        store.index_joins = false;
        let p_scan = plan(&opt, &store).expect("plans without indexes");

        let mut ctx = ExecContext::new();
        let reference = execute(&term, &store, &mut ctx).expect("term executes");
        let mut ctx = ExecContext::new();
        let r_index = execute_plan(&p_index, &store, &mut ctx).expect("index plan executes");
        let mut ctx = ExecContext::new();
        let r_scan = execute_plan(&p_scan, &store, &mut ctx).expect("scan plan executes");

        let head = [v0, v1];
        assert_eq!(
            reference.project(&head),
            r_index.project(&head),
            "index plan changed semantics (seed {seed}) for {expr:?}"
        );
        assert_eq!(
            r_index.project(&head),
            r_scan.project(&head),
            "index and scan plans disagree (seed {seed}) for {expr:?}"
        );
    }
    store.index_joins = true;
}

#[test]
fn label_filtered_index_join_matches_scan_strategies() {
    // Directed: a doubly label-filtered edge scan absorbed into an
    // index join filters through the sorted node-label sets. CITY→REGION
    // keeps only Grenoble→AuvergneRhôneAlpes reachable from livesIn.
    let db = fig2_yago_database();
    let mut store = RelStore::load(&db);
    let s = &store.symbols;
    let scan = |label: &str, src, tgt| RaTerm::EdgeScan {
        label: db.edge_label_id(label).unwrap(),
        src: s.col(src),
        tgt: s.col(tgt),
    };
    let node = |label: &str, col: &str| RaTerm::NodeScan {
        labels: vec![db.node_label_id(label).unwrap()],
        col: s.col(col),
    };
    let filtered = RaTerm::semijoin(
        RaTerm::semijoin(scan("isLocatedIn", "y", "z"), node("CITY", "y")),
        node("REGION", "z"),
    );
    let t = RaTerm::join(scan("livesIn", "x", "y"), filtered);
    let p = plan(&t, &store).unwrap();
    assert!(
        matches!(
            p.op,
            PhysOp::IndexJoin { ref src_labels, ref tgt_labels, .. }
                if src_labels.is_some() && tgt_labels.is_some()
        ),
        "{p:?}"
    );
    let mut ctx = ExecContext::new();
    let r_index = execute_plan(&p, &store, &mut ctx).unwrap();
    store.index_joins = false;
    let p_scan = plan(&t, &store).unwrap();
    let mut ctx = ExecContext::new();
    let r_scan = execute_plan(&p_scan, &store, &mut ctx).unwrap();
    assert_eq!(r_index, r_scan);
    assert_eq!(r_index.len(), 2, "one CITY→REGION hop per resident");
}

#[test]
fn index_join_inside_fixpoint_interacts_with_the_step_cache() {
    // Directed: the closure step's join against the static renamed scan
    // probes the CSR instead of building a hash table. Cached and
    // uncached fixpoint execution agree, no hash table is built in any
    // round, and the index-disabled plan produces identical results.
    let db = fig2_yago_database();
    let mut store = RelStore::load(&db);
    let s = &store.symbols;
    let f = closure_fixpoint(
        s.recvar("X"),
        RaTerm::EdgeScan {
            label: db.edge_label_id("isLocatedIn").unwrap(),
            src: s.col("x"),
            tgt: s.col("y"),
        },
        s.col("x"),
        s.col("y"),
        s.col("m"),
    );
    let p = plan(&f, &store).unwrap();
    assert!(
        p.contains_op(&|op| matches!(op, PhysOp::IndexJoin { .. })),
        "{p:?}"
    );

    let mut cached = ExecContext::new();
    let r_cached = execute_plan(&p, &store, &mut cached).unwrap();
    let mut uncached = ExecContext::new();
    uncached.no_fixpoint_cache = true;
    let r_uncached = execute_plan(&p, &store, &mut uncached).unwrap();
    assert_eq!(r_cached, r_uncached, "step cache must not change results");
    assert!(cached.fixpoint_rounds >= 2, "closure iterates");
    assert_eq!(cached.hash_builds, 0, "the CSR is the build side");
    assert_eq!(uncached.hash_builds, 0);

    store.index_joins = false;
    let p_scan = plan(&f, &store).unwrap();
    let mut ctx = ExecContext::new();
    let r_scan = execute_plan(&p_scan, &store, &mut ctx).unwrap();
    assert_eq!(r_cached, r_scan);
    assert!(ctx.hash_builds > 0, "the ablation builds hash tables");
}

#[test]
fn cloning_a_scanned_base_table_does_not_copy_row_data() {
    // The zero-copy pin (Arc pointer equality): base-table handles,
    // their clones, positional renames and executed bare scans all share
    // the store's loaded buffer.
    let db = fig2_yago_database();
    let store = RelStore::load(&db);
    let le = db.edge_label_id("isLocatedIn").unwrap();
    let t1 = store.edge_table(le);
    let t2 = store.edge_table(le);
    assert!(t1.shares_data(&t2), "two scans share one buffer");
    assert!(t1.clone().shares_data(&t1), "clone shares");
    let renamed = t1.with_cols(vec![store.symbols.col("x"), store.symbols.col("y")]);
    assert!(renamed.shares_data(&t1), "positional rename shares");

    let term = RaTerm::EdgeScan {
        label: le,
        src: store.symbols.col("x"),
        tgt: store.symbols.col("y"),
    };
    let mut ctx = ExecContext::new();
    let executed = execute(&term, &store, &mut ctx).unwrap();
    assert!(
        executed.shares_data(&t1),
        "executing a bare scan returns the store's buffer"
    );
    // Out-of-range lookups share the static empty handle.
    let e1 = store.edge_table(sgq_common::EdgeLabelId::new(1000));
    let e2 = store.edge_table(sgq_common::EdgeLabelId::new(1001));
    assert!(e1.shares_data(&e2));
}

#[test]
fn estimates_are_finite_nonnegative_and_monotone() {
    // Estimator soundness over random terms: every estimate is finite and
    // non-negative, and wrapping a term in a row-reducing operator —
    // a node-label semi-join filter or an equality selection — never
    // *increases* the estimate.
    let db = fig2_yago_database();
    let store = RelStore::load(&db);
    let (v0, v1) = (store.symbols.col("v0"), store.symbols.col("v1"));
    for seed in 0..96u64 {
        let mut rng = Rng::seed_from_u64(seed ^ 0xe57);
        let expr = random_expr(&db, &mut rng, 3);
        let mut names = NameGen::new(&store.symbols);
        let term = path_to_term(&expr, v0, v1, &mut names);
        let term = random_filters(&db, &mut rng, term, &[v0, v1]);
        let e = sgq_ra::cost::estimate(&term, &store);
        assert!(
            e.rows.is_finite() && e.rows >= 0.0,
            "rows estimate unsound (seed {seed}): {e:?} for {expr:?}"
        );
        assert!(
            e.cost.is_finite() && e.cost >= 0.0,
            "cost estimate unsound (seed {seed}): {e:?} for {expr:?}"
        );
        // Semi-join filters only remove rows.
        let label = sgq_common::NodeLabelId::new(rng.gen_range(0..db.node_label_count()) as u32);
        let filtered = RaTerm::semijoin(
            term.clone(),
            RaTerm::NodeScan {
                labels: vec![label],
                col: v0,
            },
        );
        let ef = sgq_ra::cost::estimate(&filtered, &store);
        assert!(
            ef.rows <= e.rows + 1e-9,
            "semi-join estimate exceeds its input (seed {seed}): {} > {}",
            ef.rows,
            e.rows
        );
        // Equality selections only remove rows.
        let selected = RaTerm::select_eq(term.clone(), v0, v1);
        let es = sgq_ra::cost::estimate(&selected, &store);
        assert!(
            es.rows <= e.rows.max(1.0) + 1e-9,
            "selection estimate exceeds its input (seed {seed}): {} > {}",
            es.rows,
            e.rows
        );
    }
}

#[test]
fn fig2_scan_estimates_match_triple_counts_exactly() {
    // Golden q-error assertions on the Fig. 2 database: a scan annotated
    // with both endpoint labels is estimated straight off the triple
    // counts, so the estimate is exact (q-error 1.0).
    let db = fig2_yago_database();
    let store = RelStore::load(&db);
    let s = &store.symbols;
    let scan = |label: &str| RaTerm::EdgeScan {
        label: db.edge_label_id(label).unwrap(),
        src: s.col("x"),
        tgt: s.col("y"),
    };
    let node = |label: &str, col: &str| RaTerm::NodeScan {
        labels: vec![db.node_label_id(label).unwrap()],
        col: s.col(col),
    };
    let annotated = |edge: &str, src: &str, tgt: &str| {
        RaTerm::semijoin(RaTerm::semijoin(scan(edge), node(src, "x")), node(tgt, "y"))
    };
    for (edge, src, tgt, expected) in [
        // The Fig. 2 isLocatedIn triples and an impossible one.
        ("isLocatedIn", "CITY", "REGION", 2.0),
        ("isLocatedIn", "PROPERTY", "CITY", 1.0),
        ("isLocatedIn", "REGION", "COUNTRY", 1.0),
        ("isLocatedIn", "COUNTRY", "CITY", 0.0),
        ("owns", "PERSON", "PROPERTY", 1.0),
    ] {
        let t = annotated(edge, src, tgt);
        let est = sgq_ra::cost::estimate(&t, &store).rows;
        assert_eq!(
            est, expected,
            "{src} -{edge}-> {tgt} should estimate exactly {expected}"
        );
        // q-error against the executed cardinality is exactly 1.
        let mut ctx = ExecContext::new();
        let actual = execute(&t, &store, &mut ctx).unwrap().len();
        assert_eq!(sgq_ra::cost::q_error(est, actual as f64), 1.0);
    }
}

#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    // The morsel-parallel soundness property: for random optimised
    // plans, `execute_plan(DOP=N) == execute_plan(DOP=1)` bit-for-bit
    // (same columns, same row buffer contents). Parallelism is forced
    // on the tiny fixture by dropping the cost gate to 1 row and
    // capping morsels at 2 rows; DOP=7 exercises an uneven last morsel
    // and more workers than morsels.
    let db = fig2_yago_database();
    let store = RelStore::load(&db);
    let (v0, v1) = (store.symbols.col("v0"), store.symbols.col("v1"));
    for seed in 0..96u64 {
        let mut rng = Rng::seed_from_u64(seed ^ 0xd0b);
        let expr = random_expr(&db, &mut rng, 3);
        let mut names = NameGen::new(&store.symbols);
        let term = path_to_term(&expr, v0, v1, &mut names);
        let term = random_filters(&db, &mut rng, term, &[v0, v1]);
        let opt = optimize(&term, &store);
        let p = plan(&opt, &store).expect("optimized term lowers");

        let mut ctx = ExecContext::new();
        let serial = execute_plan(&p, &store, &mut ctx).expect("serial plan executes");
        for dop in [2usize, 7] {
            let mut ctx = ExecContext::new();
            ctx.dop = dop;
            ctx.parallel_threshold = 1;
            ctx.morsel_rows = 2;
            let par = execute_plan(&p, &store, &mut ctx).expect("parallel plan executes");
            assert_eq!(
                serial, par,
                "DOP={dop} changed results (seed {seed}) for {expr:?}"
            );
        }
    }
}

#[test]
fn storage_layouts_are_bit_identical_to_the_reference_executor() {
    // The pluggable-layout soundness property: for random optimised
    // terms (joins, unions, label filters and fixpoints via `plus`),
    // planning and executing against every storage layout — per-label,
    // polymorphic (masked multi scans), denormalised (precomputed
    // endpoint-label slices) — produces results bit-identical to the
    // term-level reference executor, serially and at DOP ∈ {2, 7}.
    let db = fig2_yago_database();
    let reference_store = RelStore::load(&db);
    let (v0, v1) = (
        reference_store.symbols.col("v0"),
        reference_store.symbols.col("v1"),
    );
    let stores: Vec<RelStore> = sgq_ra::LayoutKind::ALL
        .iter()
        .map(|&k| RelStore::load_with_layout(&db, k))
        .collect();
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed ^ 0x1a40);
        let expr = random_expr(&db, &mut rng, 3);
        let mut names = NameGen::new(&reference_store.symbols);
        let term = path_to_term(&expr, v0, v1, &mut names);
        let term = random_filters(&db, &mut rng, term, &[v0, v1]);

        let mut ctx = ExecContext::new();
        let reference = execute(&term, &reference_store, &mut ctx).expect("term executes");
        let head = [v0, v1];
        let reference = reference.project(&head);
        for store in &stores {
            // Each layout plans with its own capabilities (masked scans,
            // denorm slices) — lower against this store, not a shared plan.
            let p = plan(&optimize(&term, store), store).expect("plan lowers");
            let mut ctx = ExecContext::new();
            let serial = execute_plan(&p, store, &mut ctx).expect("plan executes");
            assert_eq!(
                reference,
                serial.project(&head),
                "layout {} changed semantics (seed {seed}) for {expr:?}",
                store.layout_kind()
            );
            for dop in [2usize, 7] {
                let mut ctx = ExecContext::new();
                ctx.dop = dop;
                ctx.parallel_threshold = 1;
                ctx.morsel_rows = 2;
                let par = execute_plan(&p, store, &mut ctx).expect("parallel plan executes");
                assert_eq!(
                    serial,
                    par,
                    "layout {} DOP={dop} changed results (seed {seed}) for {expr:?}",
                    store.layout_kind()
                );
            }
        }
    }
}

#[test]
fn memo_warm_plans_are_bit_identical_to_cold() {
    // The cardinality feedback memo changes estimates — and therefore
    // plan shapes — but never results: for random optimised terms,
    // `execute_plan(memo-warm) == execute_plan(memo-cold) ==
    // execute(term)`, including under aggressive mid-flight replanning
    // and at DOP ∈ {2, 7}.
    let db = fig2_yago_database();
    let store = RelStore::load(&db);
    let (v0, v1) = (store.symbols.col("v0"), store.symbols.col("v1"));
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed ^ 0xfeedb);
        let expr = random_expr(&db, &mut rng, 3);
        let mut names = NameGen::new(&store.symbols);
        let term = path_to_term(&expr, v0, v1, &mut names);
        let term = random_filters(&db, &mut rng, term, &[v0, v1]);
        let opt = optimize(&term, &store);

        // Plan cold, then execute — execution populates the memo with
        // the true cardinalities of every static subtree.
        store.feedback.clear();
        let p_cold = plan(&opt, &store).expect("cold plan lowers");
        let mut ctx = ExecContext::new();
        let cold = execute_plan(&p_cold, &store, &mut ctx).expect("cold plan executes");
        let mut ctx = ExecContext::new();
        let reference = execute(&term, &store, &mut ctx).expect("term executes");
        let head = [v0, v1];
        assert_eq!(
            reference.project(&head),
            cold.project(&head),
            "cold plan changed semantics (seed {seed}) for {expr:?}"
        );

        // Re-planning now draws estimates from the observations; the
        // physical strategy may change, the result must not.
        let p_warm = plan(&opt, &store).expect("warm plan lowers");
        let mut ctx = ExecContext::new();
        let warm = execute_plan(&p_warm, &store, &mut ctx).expect("warm plan executes");
        assert_eq!(
            cold, warm,
            "warm memo changed results (seed {seed}) for {expr:?}"
        );

        // An aggressive mid-flight replan trigger may flip build sides
        // at materialisation boundaries — results stay bit-identical.
        let mut ctx = ExecContext::new();
        ctx.replan_factor = 2.0;
        let replanned = execute_plan(&p_warm, &store, &mut ctx).expect("replanning executes");
        assert_eq!(
            cold, replanned,
            "mid-flight replanning changed results (seed {seed}) for {expr:?}"
        );

        for dop in [2usize, 7] {
            let mut ctx = ExecContext::new();
            ctx.dop = dop;
            ctx.parallel_threshold = 1;
            ctx.morsel_rows = 2;
            let par = execute_plan(&p_warm, &store, &mut ctx).expect("parallel plan executes");
            assert_eq!(
                cold, par,
                "memo-warm DOP={dop} changed results (seed {seed}) for {expr:?}"
            );
        }
    }
    store.feedback.clear();
}

#[test]
fn parallel_index_join_respects_label_filters() {
    // Directed: the doubly label-filtered index join from the scan
    // strategy test, executed per morsel — the node-label set filters
    // must apply identically inside every morsel task.
    let db = fig2_yago_database();
    let store = RelStore::load(&db);
    let s = &store.symbols;
    let scan = |label: &str, src, tgt| RaTerm::EdgeScan {
        label: db.edge_label_id(label).unwrap(),
        src: s.col(src),
        tgt: s.col(tgt),
    };
    let node = |label: &str, col: &str| RaTerm::NodeScan {
        labels: vec![db.node_label_id(label).unwrap()],
        col: s.col(col),
    };
    let filtered = RaTerm::semijoin(
        RaTerm::semijoin(scan("isLocatedIn", "y", "z"), node("CITY", "y")),
        node("REGION", "z"),
    );
    let t = RaTerm::join(scan("livesIn", "x", "y"), filtered);
    let p = plan(&t, &store).unwrap();
    assert!(
        matches!(
            p.op,
            PhysOp::IndexJoin { ref src_labels, ref tgt_labels, .. }
                if src_labels.is_some() && tgt_labels.is_some()
        ),
        "{p:?}"
    );
    let mut ctx = ExecContext::new();
    let serial = execute_plan(&p, &store, &mut ctx).unwrap();
    let mut ctx = ExecContext::new();
    ctx.dop = 4;
    ctx.parallel_threshold = 1;
    ctx.morsel_rows = 1;
    let parallel = execute_plan(&p, &store, &mut ctx).unwrap();
    assert_eq!(serial, parallel);
    assert!(ctx.morsels_executed >= 2, "the index join must go parallel");
    assert_eq!(parallel.len(), 2, "one CITY→REGION hop per resident");
}

#[test]
fn parallel_fixpoint_matches_serial_with_identical_builds() {
    // Directed: inside a fixpoint, each round's delta probe runs per
    // morsel against the cached static build side. Results match serial
    // execution bit-for-bit, the round count is unchanged, and the
    // build-side hash tables are constructed on the caller thread —
    // exactly as many as the serial run builds.
    let db = fig2_yago_database();
    let mut store = RelStore::load(&db);
    // Ablate index joins so the step hash-joins and builds are counted.
    store.index_joins = false;
    let s = &store.symbols;
    let f = closure_fixpoint(
        s.recvar("X"),
        RaTerm::EdgeScan {
            label: db.edge_label_id("isLocatedIn").unwrap(),
            src: s.col("x"),
            tgt: s.col("y"),
        },
        s.col("x"),
        s.col("y"),
        s.col("m"),
    );
    let p = plan(&f, &store).unwrap();
    let mut serial = ExecContext::new();
    let r_serial = execute_plan(&p, &store, &mut serial).unwrap();
    let mut par = ExecContext::new();
    par.dop = 4;
    par.parallel_threshold = 1;
    par.morsel_rows = 1;
    let r_par = execute_plan(&p, &store, &mut par).unwrap();
    assert_eq!(r_serial, r_par, "parallel fixpoint changed results");
    assert_eq!(serial.fixpoint_rounds, par.fixpoint_rounds);
    assert_eq!(
        serial.hash_builds, par.hash_builds,
        "build sides must stay on the caller thread (cached, not per morsel)"
    );
    assert!(par.morsels_executed >= 2, "delta probes must go parallel");
    assert!(serial.fixpoint_rounds >= 2, "closure iterates");

    // The CSR-backed plan parallelises too, with zero hash builds.
    store.index_joins = true;
    let p_csr = plan(&f, &store).unwrap();
    let mut csr = ExecContext::new();
    csr.dop = 4;
    csr.parallel_threshold = 1;
    csr.morsel_rows = 1;
    let r_csr = execute_plan(&p_csr, &store, &mut csr).unwrap();
    assert_eq!(r_serial, r_csr);
    assert_eq!(csr.hash_builds, 0, "the CSR is the build side");
}

#[test]
fn parallel_row_budget_stops_within_one_morsel_batch_per_worker() {
    // A budget-exceeding parallel join must stop promptly: the first
    // morsel to breach `max_rows` trips the shared cancel flag, and
    // only morsels already past their final poll can still record. The
    // overshoot is therefore bounded by one in-flight morsel's output
    // per worker: `max_rows + dop * morsel_rows * f_max`, where f_max
    // is the worst per-key fanout either join side can contribute.
    let (_, db) = sgq_datasets::yago::generate(sgq_datasets::yago::YagoConfig::scaled(0.2));
    let store = RelStore::load(&db);
    let s = &store.symbols;
    let scan = |label: &str, src, tgt| RaTerm::EdgeScan {
        label: db.edge_label_id(label).unwrap(),
        src: s.col(src),
        tgt: s.col(tgt),
    };
    // A fanout self-join (people sharing a city) whose output dwarfs its
    // inputs, so a budget above the scan sizes still trips inside the
    // parallel probe.
    let t = RaTerm::join(scan("livesIn", "x", "y"), scan("livesIn", "z", "y"));
    let p = plan(&t, &store).unwrap();

    // Full output size and worst-case per-key fanout, from the data.
    let mut ctx = ExecContext::new();
    let total = execute_plan(&p, &store, &mut ctx).unwrap().len();
    let fanout = |rel: &Relation, key: usize| {
        let mut best = 0usize;
        let mut run = 0usize;
        let mut prev = None;
        for row in rel.rows() {
            if prev == Some(row[key]) {
                run += 1;
            } else {
                run = 1;
                prev = Some(row[key]);
            }
            best = best.max(run);
        }
        best
    };
    let lives = store
        .edge_table(db.edge_label_id("livesIn").unwrap())
        .with_cols(vec![s.col("x"), s.col("y")]);
    // Both join sides are livesIn keyed on its target column.
    let f_max = fanout(&lives.project(&[s.col("y"), s.col("x")]), 0);

    let (dop, morsel_rows, max_rows) = (2usize, 4usize, 2_000usize);
    let mut ctx = ExecContext::new();
    ctx.dop = dop;
    ctx.parallel_threshold = 1;
    ctx.morsel_rows = morsel_rows;
    ctx.max_rows = max_rows;
    let err = execute_plan(&p, &store, &mut ctx).expect_err("budget must trip");
    assert!(
        err.to_string().contains("row budget"),
        "expected the row-budget error, got {err}"
    );
    let bound = max_rows + dop * morsel_rows * f_max;
    assert!(
        ctx.rows_materialized() <= bound,
        "overshoot too large: {} rows recorded, bound {bound} (total {total})",
        ctx.rows_materialized()
    );
    assert!(
        total > bound,
        "fixture too small to distinguish early stop ({total} <= {bound})"
    );
}

/// Asserts rows are strictly increasing (sorted with no duplicates).
fn assert_canonical(rel: &Relation, context: &str) {
    let rows: Vec<&[u32]> = rel.rows().collect();
    for w in rows.windows(2) {
        assert!(
            w[0] < w[1],
            "{context}: rows out of canonical order: {:?} !< {:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn every_operator_returns_canonical_relations() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let c: Vec<ColId> = (0..3).map(ColId::new).collect();
        let arb = |rng: &mut Rng, cols: &[ColId]| {
            let n = rng.gen_range(0..20);
            Relation::from_rows(
                cols.to_vec(),
                (0..n).map(|_| {
                    (0..cols.len())
                        .map(|_| rng.gen_range(0..8) as u32)
                        .collect()
                }),
            )
        };
        let r = arb(&mut rng, &[c[0], c[1]]);
        let s = arb(&mut rng, &[c[1], c[2]]);
        let same = arb(&mut rng, &[c[0], c[1]]);

        assert_canonical(&r, "from_rows");
        assert_canonical(&r.project(&[c[0]]), "project prefix");
        assert_canonical(&r.project(&[c[1]]), "project non-prefix");
        assert_canonical(&r.rename(c[0], ColId::new(9)), "rename");
        assert_canonical(
            &r.with_cols(vec![ColId::new(8), ColId::new(9)]),
            "with_cols",
        );
        assert_canonical(&r.select_eq_at(0, 1), "select_eq_at");
        assert_canonical(&r.join(&s), "join");
        assert_canonical(&r.semijoin(&s), "semijoin");
        assert_canonical(&r.union(&same), "union");
        assert_canonical(&r.difference(&same), "difference");
    }
}

#[test]
fn executed_plans_are_canonical() {
    let db = fig2_yago_database();
    let store = RelStore::load(&db);
    let (v0, v1) = (store.symbols.col("v0"), store.symbols.col("v1"));
    for seed in 0..32u64 {
        let mut rng = Rng::seed_from_u64(seed ^ 0xca11);
        let expr = random_expr(&db, &mut rng, 3);
        let mut names = NameGen::new(&store.symbols);
        let term = path_to_term(&expr, v0, v1, &mut names);
        let mut ctx = ExecContext::new();
        let rel = execute(&term, &store, &mut ctx).expect("term executes");
        assert_canonical(&rel, "executed plan");
    }
}
