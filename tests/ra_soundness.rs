//! Soundness of the RA optimiser and canonicity of the relation algebra.
//!
//! Two randomized properties over the Fig. 2 database:
//!
//! 1. `execute(optimize(t)) == execute(t)` for random `RaTerm`s built
//!    from random path expressions (joins, semi-joins, unions, fixpoints)
//!    plus random node-label semi-join filters — the shapes the
//!    translator and the µ-RA rewriter actually produce.
//! 2. Every `Relation` operator returns a canonical (strictly sorted,
//!    deduplicated) result, including the operators that skip the re-sort
//!    because they provably preserve order.

use sgq_algebra::ast::PathExpr;
use sgq_common::{ColId, Rng};
use sgq_graph::database::fig2_yago_database;
use sgq_ra::exec::{execute, ExecContext};
use sgq_ra::optimize::optimize;
use sgq_ra::term::RaTerm;
use sgq_ra::{RelStore, Relation};
use sgq_translate::ucqt2rra::{path_to_term, NameGen};

/// A random path expression over the Fig. 2 database's edge labels.
fn random_expr(db: &sgq_graph::GraphDatabase, rng: &mut Rng, depth: usize) -> PathExpr {
    let le = sgq_common::EdgeLabelId::new(rng.gen_range(0..db.edge_label_count()) as u32);
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.25) {
            PathExpr::Reverse(le)
        } else {
            PathExpr::Label(le)
        };
    }
    match rng.gen_range(0..7) {
        0 | 1 => PathExpr::concat(
            random_expr(db, rng, depth - 1),
            random_expr(db, rng, depth - 1),
        ),
        2 => PathExpr::union(
            random_expr(db, rng, depth - 1),
            random_expr(db, rng, depth - 1),
        ),
        3 => PathExpr::conj(
            random_expr(db, rng, depth - 1),
            random_expr(db, rng, depth - 1),
        ),
        4 => PathExpr::branch_r(
            random_expr(db, rng, depth - 1),
            random_expr(db, rng, depth - 1),
        ),
        5 => PathExpr::branch_l(
            random_expr(db, rng, depth - 1),
            random_expr(db, rng, depth - 1),
        ),
        _ => PathExpr::plus(random_expr(db, rng, depth - 1)),
    }
}

/// Optionally wraps `term` in node-label semi-join filters on its output
/// columns — the shape the schema rewrite produces, and the trigger for
/// the optimiser's pushdown rules (including pushdown into fixpoints).
fn random_filters(
    db: &sgq_graph::GraphDatabase,
    rng: &mut Rng,
    term: RaTerm,
    cols: &[ColId],
) -> RaTerm {
    let mut term = term;
    for &col in cols {
        if rng.gen_bool(0.4) {
            let label =
                sgq_common::NodeLabelId::new(rng.gen_range(0..db.node_label_count()) as u32);
            term = RaTerm::semijoin(
                term,
                RaTerm::NodeScan {
                    labels: vec![label],
                    col,
                },
            );
        }
    }
    term
}

#[test]
fn optimize_preserves_execution_results() {
    let db = fig2_yago_database();
    let store = RelStore::load(&db);
    let (v0, v1) = (store.symbols.col("v0"), store.symbols.col("v1"));
    for seed in 0..96u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let expr = random_expr(&db, &mut rng, 3);
        let mut names = NameGen::new(&store.symbols);
        let term = path_to_term(&expr, v0, v1, &mut names);
        let term = random_filters(&db, &mut rng, term, &[v0, v1]);
        let opt = optimize(&term, &store);

        let mut ctx = ExecContext::new();
        let plain = execute(&term, &store, &mut ctx).expect("plain term executes");
        let mut ctx = ExecContext::new();
        let optimized = execute(&opt, &store, &mut ctx).expect("optimized term executes");
        // Join reordering may permute columns; compare on the query head.
        assert_eq!(
            plain.project(&[v0, v1]),
            optimized.project(&[v0, v1]),
            "optimize changed semantics (seed {seed}) for {expr:?}"
        );
    }
}

/// Asserts rows are strictly increasing (sorted with no duplicates).
fn assert_canonical(rel: &Relation, context: &str) {
    let rows: Vec<&[u32]> = rel.rows().collect();
    for w in rows.windows(2) {
        assert!(
            w[0] < w[1],
            "{context}: rows out of canonical order: {:?} !< {:?}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn every_operator_returns_canonical_relations() {
    for seed in 0..64u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let c: Vec<ColId> = (0..3).map(ColId::new).collect();
        let arb = |rng: &mut Rng, cols: &[ColId]| {
            let n = rng.gen_range(0..20);
            Relation::from_rows(
                cols.to_vec(),
                (0..n).map(|_| {
                    (0..cols.len())
                        .map(|_| rng.gen_range(0..8) as u32)
                        .collect()
                }),
            )
        };
        let r = arb(&mut rng, &[c[0], c[1]]);
        let s = arb(&mut rng, &[c[1], c[2]]);
        let same = arb(&mut rng, &[c[0], c[1]]);

        assert_canonical(&r, "from_rows");
        assert_canonical(&r.project(&[c[0]]), "project prefix");
        assert_canonical(&r.project(&[c[1]]), "project non-prefix");
        assert_canonical(&r.rename(c[0], ColId::new(9)), "rename");
        assert_canonical(
            &r.with_cols(vec![ColId::new(8), ColId::new(9)]),
            "with_cols",
        );
        assert_canonical(&r.select_eq_at(0, 1), "select_eq_at");
        assert_canonical(&r.join(&s), "join");
        assert_canonical(&r.semijoin(&s), "semijoin");
        assert_canonical(&r.union(&same), "union");
        assert_canonical(&r.difference(&same), "difference");
    }
}

#[test]
fn executed_plans_are_canonical() {
    let db = fig2_yago_database();
    let store = RelStore::load(&db);
    let (v0, v1) = (store.symbols.col("v0"), store.symbols.col("v1"));
    for seed in 0..32u64 {
        let mut rng = Rng::seed_from_u64(seed ^ 0xca11);
        let expr = random_expr(&db, &mut rng, 3);
        let mut names = NameGen::new(&store.symbols);
        let term = path_to_term(&expr, v0, v1, &mut names);
        let mut ctx = ExecContext::new();
        let rel = execute(&term, &store, &mut ctx).expect("term executes");
        assert_canonical(&rel, "executed plan");
    }
}
