//! Knowledge-graph analytics on the synthetic YAGO dataset: runs the 18
//! recursive queries of §5.1.3 baseline-vs-schema and prints the Fig. 12
//! style comparison plus the Table 6 fixed-length-path statistics.
//!
//! ```sh
//! cargo run --release --example knowledge_graph
//! ```

use schema_graph_query::datasets::yago::{self, YagoConfig};
use schema_graph_query::harness::experiments::{fig12, table6, yago_suite, ExperimentConfig};
use schema_graph_query::harness::runner::{Backend, RunConfig};
use schema_graph_query::prelude::RedundancyRule;

fn main() {
    let mut run = RunConfig {
        timeout_ms: 5_000,
        repetitions: 3,
        ..Default::default()
    };
    // Example 13's redundancy rule keeps the rewritten queries lean, which
    // is the better trade on the in-memory relational backend.
    run.rewrite.redundancy = RedundancyRule::EitherSide;
    let cfg = ExperimentConfig {
        run,
        ldbc_sfs: vec![],
        yago_scale: 1.0,
        backend: Backend::Relational,
    };

    let (schema, db) = yago::generate(YagoConfig::scaled(cfg.yago_scale));
    println!(
        "Synthetic YAGO: {} nodes, {} edges, {} node labels, {} edge labels\n",
        db.node_count(),
        db.edge_count(),
        schema.node_count(),
        schema.edge_label_count()
    );

    println!("{}", table6(&cfg));

    println!("Running the 18 recursive queries (relational backend)...\n");
    let records = yago_suite(&cfg);
    println!("{}", fig12(&records, cfg.run.timeout_ms));
}
