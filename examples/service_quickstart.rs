//! Service quickstart: the paper's pipeline behind a concurrent query
//! service.
//!
//! Builds a small synthetic YAGO database, starts an `sgq_service`
//! [`Service`] over it, and shows the serving loop: prepared statements
//! frozen once, the sharded plan cache turning repeats into hits,
//! concurrent sessions sharing one loaded database, and the metrics
//! registry (QPS, latency percentiles, cache hit rate).
//!
//! ```sh
//! cargo run --release --example service_quickstart
//! ```

use std::sync::Arc;

use schema_graph_query::prelude::*;
use sgq_datasets::yago::{self, YagoConfig};

fn main() {
    let (schema, db) = yago::generate(YagoConfig::tiny());
    println!(
        "serving a synthetic YAGO database: {} nodes, {} edges",
        db.node_count(),
        db.edge_count()
    );

    let service = Service::new(
        Arc::new(schema),
        Arc::new(db),
        ServiceConfig::with_workers(4),
    );
    let session = service.session();
    let opts = QueryOptions::default();

    // First execution: the front-end (rewrite → translate → optimise →
    // plan) runs once and the frozen plan enters the cache.
    let phi = "livesIn/isLocatedIn+/dealsWith+";
    let first = session.execute(phi, &opts).expect("query executes");
    println!(
        "\n{phi}\n  -> {} rows, cache {}, prepared in {} us, executed in {} us",
        first.rows.len(),
        first.stats.cache,
        first.stats.prepare_micros,
        first.stats.exec_micros
    );

    // Second execution: a plan-cache hit — no re-optimisation.
    let second = session.execute(phi, &opts).expect("query executes");
    println!(
        "  -> again: cache {}, prepared in {} us (front-end skipped)",
        second.stats.cache, second.stats.prepare_micros
    );
    assert_eq!(first.rows, second.rows);

    // Concurrent sessions share one Arc-loaded database and produce the
    // same answers as sequential execution.
    let queries = ["owns/isLocatedIn+", "influences+", "livesIn"];
    let concurrent: Vec<Vec<Vec<u32>>> = std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                let session = service.session();
                s.spawn(move || session.execute(q, &opts).expect("query executes").rows)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (q, rows) in queries.iter().zip(&concurrent) {
        let sequential = session.execute(q, &opts).expect("query executes").rows;
        assert_eq!(&sequential, rows, "concurrent == sequential for {q}");
        println!("  {q}: {} rows (concurrent == sequential)", rows.len());
    }

    // The registry aggregates QPS, latency percentiles and cache hits.
    println!("\n{}", service.metrics());
    println!("\nmetrics as JSON: {}", service.metrics().to_json());
    service.shutdown();
}
