//! Quickstart: the paper's running example end to end.
//!
//! Builds the Fig. 1 YAGO schema and Fig. 2 database, rewrites the
//! Example 10 path expression ϕ4 = `livesIn/isLocatedIn+/dealsWith+`, and
//! shows that baseline and schema-enriched evaluation agree while the
//! rewritten query avoids the `isLocatedIn` transitive closure entirely.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use schema_graph_query::prelude::*;
use sgq_query::cqt::ucqt_to_string;

fn main() {
    let schema = schema_graph_query::graph::schema::fig1_yago_schema();
    let db = schema_graph_query::graph::database::fig2_yago_database();
    println!(
        "YAGO example database: {} nodes, {} edges (Fig. 2)",
        db.node_count(),
        db.edge_count()
    );

    let phi = parse_path("livesIn/isLocatedIn+/dealsWith+", &schema).unwrap();
    println!("\nϕ4 = livesIn/isLocatedIn+/dealsWith+  (Example 10)");

    // The schema-based rewrite (Example 13). The either-side redundancy
    // rule reproduces the paper's exact RS(ϕ4).
    let opts = RewriteOptions {
        redundancy: RedundancyRule::EitherSide,
        ..Default::default()
    };
    let rewritten = rewrite_path(&schema, &phi, opts);
    let query = match &rewritten.outcome {
        RewriteOutcome::Enriched(q) => q.clone(),
        other => panic!("ϕ4 should be enrichable, got {other:?}"),
    };
    println!("RS(ϕ4) = {}", ucqt_to_string(&query, &schema));
    println!(
        "fixed-length replacements for isLocatedIn+: lengths {:?}",
        rewritten.report.plus_stats.path_lengths
    );

    // Both evaluations agree (Theorem 1 in action).
    let engine = GraphEngine::new(&db);
    let baseline = engine.eval_path(&phi).unwrap();
    let rows = engine.run_ucqt(&query).unwrap();
    let enriched: Vec<_> = rows.iter().map(|r| (r[0], r[1])).collect();
    assert_eq!(baseline, enriched, "Theorem 1: semantics preserved");

    println!("\nResults ({}):", baseline.len());
    let name_key = db.key_id("name").unwrap();
    for (s, t) in &baseline {
        let name = |n| {
            db.property(n, name_key)
                .map(|v| v.to_string())
                .unwrap_or_else(|| n.to_string())
        };
        println!("  {} --ϕ4--> {}", name(*s), name(*t));
    }

    // The rewritten query also runs on the relational backend. Columns
    // are interned through the store's symbol table during translation.
    let store = RelStore::load(&db);
    let mut names = schema_graph_query::translate::ucqt2rra::NameGen::new(&store.symbols);
    let term = schema_graph_query::translate::ucqt_to_term(&query, &mut names).unwrap();
    let mut ctx = ExecContext::new();
    let rel = execute(&term, &store, &mut ctx).unwrap();
    assert_eq!(rel.len(), baseline.len());
    println!("\nRelational backend agrees: {} rows", rel.len());
    println!(
        "Recursive SQL:\n{}",
        schema_graph_query::translate::to_sql(&term, &schema, &store.symbols)
    );
}
