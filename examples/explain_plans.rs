//! Plan-level impact of schema annotations (Figs. 15–17): translates the
//! paper's Q1/Q2 pair into SQL and Cypher, prints the physical execution
//! plans with per-operator strategy (merge vs hash join, build side,
//! fused filtered scans), estimated costs and actual cardinalities —
//! showing the semi-join the annotation buys — and closes with the
//! Fig. 2 physical-plan showcase, including the fixpoint build-side
//! caching counters.
//!
//! ```sh
//! cargo run --release --example explain_plans
//! ```

use schema_graph_query::harness::experiments::{fig15_16, fig17, physical_plans};

fn main() {
    println!("{}", fig15_16());
    println!("{}", fig17(0.3));
    println!("{}", physical_plans());
}
