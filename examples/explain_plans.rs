//! Plan-level impact of schema annotations (Figs. 15–17): translates the
//! paper's Q1/Q2 pair into SQL and Cypher, then prints the relational
//! execution plans with estimated costs and actual cardinalities, showing
//! the semi-join the annotation buys.
//!
//! ```sh
//! cargo run --release --example explain_plans
//! ```

use schema_graph_query::harness::experiments::{fig15_16, fig17};

fn main() {
    println!("{}", fig15_16());
    println!("{}", fig17(0.3));
}
