//! Social-network workload: generates LDBC-SNB-like graphs at increasing
//! scale factors and reproduces the feasibility behaviour of Tab. 5 —
//! recursive queries that time out under the baseline become feasible
//! under the schema-based rewrite.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use schema_graph_query::harness::experiments::{
    fig13, ldbc_suite, table5, table7, table8, ExperimentConfig,
};
use schema_graph_query::harness::runner::{Backend, RunConfig};

fn main() {
    let cfg = ExperimentConfig {
        run: RunConfig {
            timeout_ms: 1_000,
            repetitions: 2,
            ..Default::default()
        },
        ldbc_sfs: vec![0.1, 0.3, 1.0],
        yago_scale: 1.0,
        backend: Backend::Graph,
    };
    println!(
        "Running the 30 Tab. 4 queries on LDBC scale factors {:?} (graph backend, {} ms timeout)...\n",
        cfg.ldbc_sfs, cfg.run.timeout_ms
    );
    let records = ldbc_suite(&cfg);

    println!("{}", table5(&records, &cfg));
    println!("{}", table7(&records, cfg.run.timeout_ms));
    println!("{}", table8(&records, cfg.run.timeout_ms));
    println!("{}", fig13(&records, &cfg));

    // Highlight the headline effect: queries infeasible under the
    // baseline but feasible under the schema approach.
    let mut rescued: Vec<String> = Vec::new();
    for r in &records {
        if r.approach == "S" && r.feasible() {
            let baseline_failed = records.iter().any(|b| {
                b.query == r.query
                    && b.scale_factor == r.scale_factor
                    && b.approach == "B"
                    && !b.feasible()
            });
            if baseline_failed {
                rescued.push(format!("{} @ SF{}", r.query, r.scale_factor.unwrap_or(0.0)));
            }
        }
    }
    println!(
        "Queries turned from infeasible to feasible by the rewrite: {}",
        if rescued.is_empty() {
            "none at these scale factors".to_string()
        } else {
            rescued.join(", ")
        }
    );
}
